"""An R-tree (Guttman 1984) with the classical query algorithms.

This is the disk-era substrate the paper's Section 2.2 surveys: the
server-side spatial database, plus the two canonical kNN strategies it
cites — depth-first branch-and-bound (Roussopoulos et al. 1995) and
best-first distance browsing (Hjaltason & Samet 1999) — and R-tree
window queries.  Insertion uses Guttman's quadratic split; bulk loading
uses Sort-Tile-Recursive (STR).

The tree stores arbitrary items keyed by rectangles; point data uses
degenerate rectangles.
"""

from __future__ import annotations

import heapq
import itertools
import math
from typing import Any, Callable, Iterable, Iterator, Sequence

from ..errors import GeometryError
from ..geometry import Point, Rect
from ..model import POI, QueryResultEntry


class _Entry:
    """A node slot: a rectangle plus either a child node or a leaf item."""

    __slots__ = ("rect", "child", "item")

    def __init__(self, rect: Rect, child: "_Node | None" = None, item: Any = None):
        self.rect = rect
        self.child = child
        self.item = item


class _Node:
    __slots__ = ("is_leaf", "entries", "parent")

    def __init__(self, is_leaf: bool):
        self.is_leaf = is_leaf
        self.entries: list[_Entry] = []
        self.parent: "_Node | None" = None

    def mbr(self) -> Rect:
        return Rect.bounding([e.rect for e in self.entries])


def _enlargement(base: Rect, extra: Rect) -> float:
    """Area growth of ``base`` when extended to cover ``extra``."""
    return base.union_mbr(extra).area - base.area


class RTree:
    """A dynamic R-tree over rectangle-keyed items."""

    def __init__(self, max_entries: int = 8, min_entries: int | None = None):
        if max_entries < 2:
            raise ValueError("max_entries must be at least 2")
        self.max_entries = max_entries
        self.min_entries = (
            min_entries if min_entries is not None else max(1, max_entries // 2 - 1)
        )
        if not (1 <= self.min_entries <= self.max_entries // 2):
            raise ValueError(
                f"min_entries must be in [1, {self.max_entries // 2}],"
                f" got {self.min_entries}"
            )
        self._root = _Node(is_leaf=True)
        self._size = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._size

    @property
    def height(self) -> int:
        """Number of levels (1 for a tree that is just a leaf root)."""
        h = 1
        node = self._root
        while not node.is_leaf:
            node = node.entries[0].child
            h += 1
        return h

    def insert(self, rect: Rect, item: Any) -> None:
        """Insert an item keyed by ``rect``."""
        leaf = self._choose_leaf(self._root, rect)
        leaf.entries.append(_Entry(rect, item=item))
        self._size += 1
        self._handle_overflow(leaf)

    def insert_point(self, point: Point, item: Any) -> None:
        """Insert a point item (stored as a degenerate rectangle)."""
        self.insert(Rect(point.x, point.y, point.x, point.y), item)

    @classmethod
    def bulk_load(
        cls,
        items: Sequence[tuple[Rect, Any]],
        max_entries: int = 8,
        min_entries: int | None = None,
    ) -> "RTree":
        """Build a packed tree with Sort-Tile-Recursive loading."""
        tree = cls(max_entries=max_entries, min_entries=min_entries)
        if not items:
            return tree
        entries = [_Entry(rect, item=item) for rect, item in items]
        level = tree._str_pack(entries, is_leaf=True)
        while len(level) > 1:
            parents = [
                _Entry(node.mbr(), child=node) for node in level
            ]
            level = tree._str_pack(parents, is_leaf=False)
        tree._root = level[0]
        tree._size = len(items)
        return tree

    @classmethod
    def from_pois(cls, pois: Iterable[POI], max_entries: int = 8) -> "RTree":
        """Bulk load a tree of POIs keyed by their (point) locations."""
        items = [
            (Rect(p.x, p.y, p.x, p.y), p) for p in pois
        ]
        return cls.bulk_load(items, max_entries=max_entries)

    def _str_pack(self, entries: list[_Entry], is_leaf: bool) -> list[_Node]:
        """One STR packing pass: group entries into nodes of size <= M."""
        cap = self.max_entries
        n = len(entries)
        if n <= cap:
            node = _Node(is_leaf)
            node.entries = list(entries)
            return [node]
        leaf_count = math.ceil(n / cap)
        slice_count = math.ceil(math.sqrt(leaf_count))
        per_slice = slice_count * cap
        entries = sorted(entries, key=lambda e: (e.rect.center.x, e.rect.center.y))
        nodes: list[_Node] = []
        for i in range(0, n, per_slice):
            chunk = sorted(
                entries[i : i + per_slice],
                key=lambda e: (e.rect.center.y, e.rect.center.x),
            )
            groups = [chunk[j : j + cap] for j in range(0, len(chunk), cap)]
            if len(groups) > 1 and len(groups[-1]) < self.min_entries:
                # Even out the last two groups so no node underflows.
                combined = groups[-2] + groups[-1]
                half = len(combined) // 2
                groups[-2:] = [combined[:half], combined[half:]]
            for group in groups:
                node = _Node(is_leaf)
                node.entries = group
                nodes.append(node)
        if len(nodes) > 1 and len(nodes[-1].entries) < self.min_entries:
            # A tiny final slice can still underflow; borrow from the
            # previous node (which is full, so it cannot underflow).
            needed = self.min_entries - len(nodes[-1].entries)
            donor = nodes[-2].entries
            nodes[-1].entries = donor[-needed:] + nodes[-1].entries
            nodes[-2].entries = donor[:-needed]
        return nodes

    # ------------------------------------------------------------------
    # Insertion internals (Guttman)
    # ------------------------------------------------------------------
    def _choose_leaf(self, node: _Node, rect: Rect) -> _Node:
        while not node.is_leaf:
            best = min(
                node.entries,
                key=lambda e: (_enlargement(e.rect, rect), e.rect.area),
            )
            best.rect = best.rect.union_mbr(rect)
            node = best.child
        return node

    def _handle_overflow(self, node: _Node) -> None:
        while len(node.entries) > self.max_entries:
            sibling = self._quadratic_split(node)
            parent = node.parent
            if parent is None:
                new_root = _Node(is_leaf=False)
                for child in (node, sibling):
                    entry = _Entry(child.mbr(), child=child)
                    child.parent = new_root
                    new_root.entries.append(entry)
                self._root = new_root
                return
            self._refresh_parent_rect(parent, node)
            sibling.parent = parent
            parent.entries.append(_Entry(sibling.mbr(), child=sibling))
            node = parent

    def _refresh_parent_rect(self, parent: _Node, child: _Node) -> None:
        for entry in parent.entries:
            if entry.child is child:
                entry.rect = child.mbr()
                return

    def _quadratic_split(self, node: _Node) -> _Node:
        """Split an overflowing node; ``node`` keeps one group, the
        returned sibling gets the other."""
        entries = node.entries
        seed_a, seed_b = self._pick_seeds(entries)
        group_a = [entries[seed_a]]
        group_b = [entries[seed_b]]
        rect_a = group_a[0].rect
        rect_b = group_b[0].rect
        remaining = [
            e for i, e in enumerate(entries) if i not in (seed_a, seed_b)
        ]
        while remaining:
            # Force-assign when one group must absorb the rest.
            if len(group_a) + len(remaining) <= self.min_entries:
                group_a.extend(remaining)
                remaining = []
                break
            if len(group_b) + len(remaining) <= self.min_entries:
                group_b.extend(remaining)
                remaining = []
                break
            entry = max(
                remaining,
                key=lambda e: abs(
                    _enlargement(rect_a, e.rect) - _enlargement(rect_b, e.rect)
                ),
            )
            remaining.remove(entry)
            grow_a = _enlargement(rect_a, entry.rect)
            grow_b = _enlargement(rect_b, entry.rect)
            if (grow_a, rect_a.area, len(group_a)) <= (
                grow_b,
                rect_b.area,
                len(group_b),
            ):
                group_a.append(entry)
                rect_a = rect_a.union_mbr(entry.rect)
            else:
                group_b.append(entry)
                rect_b = rect_b.union_mbr(entry.rect)
        node.entries = group_a
        sibling = _Node(node.is_leaf)
        sibling.entries = group_b
        if not node.is_leaf:
            for e in node.entries:
                e.child.parent = node
            for e in sibling.entries:
                e.child.parent = sibling
        return sibling

    @staticmethod
    def _pick_seeds(entries: list[_Entry]) -> tuple[int, int]:
        worst = -1.0
        pair = (0, 1)
        for i, j in itertools.combinations(range(len(entries)), 2):
            waste = (
                entries[i].rect.union_mbr(entries[j].rect).area
                - entries[i].rect.area
                - entries[j].rect.area
            )
            if waste > worst:
                worst = waste
                pair = (i, j)
        return pair

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def window_query(self, window: Rect) -> list[Any]:
        """All items whose rectangle intersects the (closed) window."""
        hits: list[Any] = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            for entry in node.entries:
                if not entry.rect.intersects(window):
                    continue
                if node.is_leaf:
                    hits.append(entry.item)
                else:
                    stack.append(entry.child)
        return hits

    def nearest(self, query: Point, k: int = 1) -> list[QueryResultEntry]:
        """Best-first kNN (Hjaltason & Samet distance browsing).

        Returns at most ``k`` items (fewer if the tree is smaller),
        ordered by ascending distance from ``query``; items must be
        POIs or anything exposing ``location`` — distance is measured
        to the entry rectangle, which for point data is the point.
        """
        if k <= 0:
            return []
        counter = itertools.count()
        heap: list[tuple[float, int, _Entry | _Node]] = [
            (0.0, next(counter), self._root)
        ]
        results: list[QueryResultEntry] = []
        while heap and len(results) < k:
            dist, _, element = heapq.heappop(heap)
            if isinstance(element, _Node):
                for entry in element.entries:
                    d = entry.rect.distance_to_point(query)
                    target = entry if element.is_leaf else entry.child
                    heapq.heappush(heap, (d, next(counter), target))
            else:
                results.append(QueryResultEntry(element.item, dist))
        return results

    def nearest_depth_first(self, query: Point, k: int = 1) -> list[QueryResultEntry]:
        """Depth-first branch-and-bound kNN (Roussopoulos et al.).

        Identical answers to :meth:`nearest`; kept as the classical
        baseline whose node-access behaviour the benchmarks compare.
        """
        if k <= 0:
            return []
        best: list[tuple[float, int, Any]] = []  # max-heap via negation
        tie = itertools.count()

        def visit(node: _Node) -> None:
            if node.is_leaf:
                for entry in node.entries:
                    d = entry.rect.distance_to_point(query)
                    if len(best) < k:
                        heapq.heappush(best, (-d, next(tie), entry.item))
                    elif d < -best[0][0]:
                        heapq.heapreplace(best, (-d, next(tie), entry.item))
                return
            branches = sorted(
                node.entries, key=lambda e: e.rect.distance_to_point(query)
            )
            for entry in branches:
                d = entry.rect.distance_to_point(query)
                if len(best) == k and d > -best[0][0]:
                    break  # pruned: farther than the current kth best
                visit(entry.child)

        visit(self._root)
        ranked = sorted((-negd, item) for negd, _, item in best)
        return [QueryResultEntry(item, d) for d, item in ranked]

    # ------------------------------------------------------------------
    # Introspection (used by tests and benchmarks)
    # ------------------------------------------------------------------
    def iter_items(self) -> Iterator[Any]:
        stack = [self._root]
        while stack:
            node = stack.pop()
            for entry in node.entries:
                if node.is_leaf:
                    yield entry.item
                else:
                    stack.append(entry.child)

    def count_node_accesses(
        self, run: Callable[["CountingRTreeView"], Any]
    ) -> tuple[Any, int]:
        """Run a query against a counting view; returns (result, accesses)."""
        view = CountingRTreeView(self)
        result = run(view)
        return result, view.node_accesses

    def check_invariants(self) -> None:
        """Validate structural invariants; raises ``GeometryError`` on
        violation.  Exercised heavily by the tests."""

        def walk(node: _Node, depth: int, leaf_depths: list[int]) -> None:
            if node is not self._root and not (
                self.min_entries <= len(node.entries) <= self.max_entries
            ):
                raise GeometryError(
                    f"node with {len(node.entries)} entries violates"
                    f" [{self.min_entries}, {self.max_entries}]"
                )
            if node.is_leaf:
                leaf_depths.append(depth)
                return
            for entry in node.entries:
                if not entry.rect.contains_rect(entry.child.mbr()):
                    raise GeometryError("parent rect does not cover child MBR")
                walk(entry.child, depth + 1, leaf_depths)

        leaf_depths: list[int] = []
        walk(self._root, 0, leaf_depths)
        if len(set(leaf_depths)) > 1:
            raise GeometryError(f"leaves at mixed depths: {set(leaf_depths)}")
        if sum(1 for _ in self.iter_items()) != self._size:
            raise GeometryError("item count mismatch")


class CountingRTreeView:
    """Wraps an R-tree and counts node accesses during traversals.

    Used by the baseline benchmarks to compare best-first vs
    depth-first I/O behaviour without touching the algorithms.
    """

    def __init__(self, tree: RTree):
        self._tree = tree
        self.node_accesses = 0

    def nearest(self, query: Point, k: int = 1) -> list[QueryResultEntry]:
        self.node_accesses += self._count_best_first(query, k)
        return self._tree.nearest(query, k)

    def _count_best_first(self, query: Point, k: int) -> int:
        counter = itertools.count()
        heap: list[tuple[float, int, Any]] = [(0.0, next(counter), self._tree._root)]
        found = 0
        accesses = 0
        while heap and found < k:
            _, _, element = heapq.heappop(heap)
            if isinstance(element, _Node):
                accesses += 1
                for entry in element.entries:
                    d = entry.rect.distance_to_point(query)
                    target = entry if element.is_leaf else entry.child
                    heapq.heappush(heap, (d, next(counter), target))
            else:
                found += 1
        return accesses
