"""A uniform grid over moving objects for fast disc queries.

The simulator asks "which mobile hosts are within ``TxRange`` of q?"
thousands of times per run.  Host positions live in numpy arrays; the
grid bins them into square cells of roughly the transmission range so
a disc query only inspects a 3x3 cell neighbourhood.
"""

from __future__ import annotations

import math
from typing import Iterable

import numpy as np

from ..errors import GeometryError
from ..geometry import Point, Rect


class UniformGrid:
    """A rebuildable uniform grid over ``n`` points.

    Parameters
    ----------
    bounds:
        The world rectangle.  Points outside are clamped into the edge
        cells (they remain queryable).
    cell_size:
        Edge length of a grid cell; pick the typical query radius.
    """

    def __init__(self, bounds: Rect, cell_size: float):
        if cell_size <= 0:
            raise GeometryError(f"cell_size must be positive, got {cell_size}")
        if bounds.is_degenerate():
            raise GeometryError("grid bounds must have positive area")
        self.bounds = bounds
        self.cell_size = cell_size
        self.cols = max(1, math.ceil(bounds.width / cell_size))
        self.rows = max(1, math.ceil(bounds.height / cell_size))
        self._xs: np.ndarray | None = None
        self._ys: np.ndarray | None = None
        self._cell_of: np.ndarray | None = None
        self._order: np.ndarray | None = None
        self._starts: np.ndarray | None = None

    # ------------------------------------------------------------------
    def rebuild(self, xs: np.ndarray, ys: np.ndarray) -> None:
        """(Re)index the point set; arrays are referenced, not copied."""
        if xs.shape != ys.shape or xs.ndim != 1:
            raise GeometryError("xs and ys must be equal-length 1-D arrays")
        self._xs = xs
        self._ys = ys
        cx = np.clip(
            ((xs - self.bounds.x1) / self.cell_size).astype(np.int64),
            0,
            self.cols - 1,
        )
        cy = np.clip(
            ((ys - self.bounds.y1) / self.cell_size).astype(np.int64),
            0,
            self.rows - 1,
        )
        cells = cy * self.cols + cx
        order = np.argsort(cells, kind="stable")
        self._cell_of = cells
        self._order = order
        sorted_cells = cells[order]
        starts = np.searchsorted(
            sorted_cells, np.arange(self.cols * self.rows + 1)
        )
        self._starts = starts

    @property
    def size(self) -> int:
        return 0 if self._xs is None else int(self._xs.shape[0])

    def positions(self) -> tuple[np.ndarray, np.ndarray]:
        """The indexed coordinate arrays ``(xs, ys)`` (not copies)."""
        if self._xs is None or self._ys is None:
            raise GeometryError("grid queried before rebuild()")
        return self._xs, self._ys

    def _cell_indices(self, cell: int) -> np.ndarray:
        assert self._order is not None and self._starts is not None
        return self._order[self._starts[cell] : self._starts[cell + 1]]

    # ------------------------------------------------------------------
    def query_disc(self, center: Point, radius: float) -> np.ndarray:
        """Indices of all points within ``radius`` of ``center``."""
        if self._xs is None:
            raise GeometryError("grid queried before rebuild()")
        if radius < 0:
            raise GeometryError(f"radius must be non-negative, got {radius}")
        reach = math.ceil(radius / self.cell_size)
        cx = min(
            self.cols - 1,
            max(0, int((center.x - self.bounds.x1) / self.cell_size)),
        )
        cy = min(
            self.rows - 1,
            max(0, int((center.y - self.bounds.y1) / self.cell_size)),
        )
        candidates: list[np.ndarray] = []
        for gy in range(max(0, cy - reach), min(self.rows, cy + reach + 1)):
            row_base = gy * self.cols
            for gx in range(max(0, cx - reach), min(self.cols, cx + reach + 1)):
                idx = self._cell_indices(row_base + gx)
                if idx.size:
                    candidates.append(idx)
        if not candidates:
            return np.empty(0, dtype=np.int64)
        idx = np.concatenate(candidates)
        dx = self._xs[idx] - center.x
        dy = self._ys[idx] - center.y
        mask = dx * dx + dy * dy <= radius * radius
        return idx[mask]

    def query_rect(self, window: Rect) -> np.ndarray:
        """Indices of all points inside the (closed) window."""
        if self._xs is None:
            raise GeometryError("grid queried before rebuild()")
        gx1 = max(0, int((window.x1 - self.bounds.x1) / self.cell_size))
        gy1 = max(0, int((window.y1 - self.bounds.y1) / self.cell_size))
        gx2 = min(self.cols - 1, int((window.x2 - self.bounds.x1) / self.cell_size))
        gy2 = min(self.rows - 1, int((window.y2 - self.bounds.y1) / self.cell_size))
        candidates: list[np.ndarray] = []
        for gy in range(gy1, gy2 + 1):
            row_base = gy * self.cols
            for gx in range(gx1, gx2 + 1):
                idx = self._cell_indices(row_base + gx)
                if idx.size:
                    candidates.append(idx)
        if not candidates:
            return np.empty(0, dtype=np.int64)
        idx = np.concatenate(candidates)
        mask = (
            (self._xs[idx] >= window.x1)
            & (self._xs[idx] <= window.x2)
            & (self._ys[idx] >= window.y1)
            & (self._ys[idx] <= window.y2)
        )
        return idx[mask]
