"""Exception hierarchy for the ``repro`` package.

Every subsystem raises a subclass of :class:`ReproError` so callers can
catch library failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class GeometryError(ReproError):
    """Invalid geometric construction or query (e.g. empty region)."""


class SimulationError(ReproError):
    """Misuse of the discrete-event simulation kernel."""


class BroadcastError(ReproError):
    """Invalid broadcast schedule, packet, or on-air protocol state."""


class CacheError(ReproError):
    """Cooperative-cache invariant violation or invalid configuration."""


class MobilityError(ReproError):
    """Invalid mobility model configuration or trajectory query."""


class ProtocolError(ReproError):
    """Malformed peer-to-peer request or response."""


class ExperimentError(ReproError):
    """Invalid experiment configuration or runner misuse."""


class FaultError(ReproError):
    """Invalid fault-injection configuration or channel-model misuse."""


class ServeError(ReproError):
    """Serving-layer failure: framing, session, or admission misuse."""


class CodecError(ReproError):
    """Malformed, truncated, or unsupported binary codec frame."""
