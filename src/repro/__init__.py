"""repro — Location-based Spatial Queries with Data Sharing in
Wireless Broadcast Environments (Ku, Zimmermann, Wang — ICDE 2007).

A full reimplementation of the paper's system and its substrates:

* ``repro.core``       — NNV / SBNN / SBWQ, the paper's contribution;
* ``repro.geometry``   — exact rectilinear region algebra + Hilbert curve;
* ``repro.index``      — R-tree, uniform grid, brute-force oracle;
* ``repro.sim``        — discrete-event simulation kernel;
* ``repro.broadcast``  — (1, m) broadcast channel + on-air algorithms;
* ``repro.mobility``   — random waypoint and road-network movement;
* ``repro.cache``      — cooperative caches with verified regions;
* ``repro.p2p``        — single-hop peer discovery and share protocol;
* ``repro.analysis``   — the probabilistic hit-ratio model;
* ``repro.workloads``  — Table 3/4 parameter sets and generators;
* ``repro.experiments``— the simulation harness behind Figures 10–15;
* ``repro.faults``     — opt-in unreliable-wireless channel model.

Quickstart::

    from repro import quick_world
    world = quick_world(seed=7)
    outcome = world.run_knn_query(host_id=0, k=3)
"""

from .core import (
    HeapEntry,
    HeapState,
    Resolution,
    ResultHeap,
    SBNNOutcome,
    SBWQOutcome,
    SearchBounds,
    correctness_probability,
    nnv,
    sbnn,
    sbwq,
    search_bounds,
    surpassing_ratio,
)
from .geometry import Circle, Point, Rect, RectUnion
from .model import DEFAULT_CATEGORY, POI, QueryResultEntry

__version__ = "1.0.0"

__all__ = [
    "Circle",
    "DEFAULT_CATEGORY",
    "HeapEntry",
    "HeapState",
    "POI",
    "Point",
    "QueryResultEntry",
    "Rect",
    "RectUnion",
    "Resolution",
    "ResultHeap",
    "SBNNOutcome",
    "SBWQOutcome",
    "SearchBounds",
    "correctness_probability",
    "nnv",
    "quick_world",
    "sbnn",
    "sbwq",
    "search_bounds",
    "surpassing_ratio",
    "__version__",
]


def quick_world(seed: int = 0, **overrides):
    """Build a small ready-to-query simulated world (see examples/).

    Imported lazily so that ``import repro`` stays cheap.
    """
    from .experiments import Simulation, scaled_parameters
    from .workloads import SYNTHETIC_SUBURBIA

    params = scaled_parameters(SYNTHETIC_SUBURBIA, area_scale=0.15, **overrides)
    return Simulation(params, seed=seed)
