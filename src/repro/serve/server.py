"""The asyncio base station: broadcast world + on-demand wire service.

One :class:`BaseStationServer` owns a fully wired
:class:`~repro.experiments.Simulation` (POI field, broadcast schedule,
fleet, caches) and serves it over the framed protocol of
:mod:`repro.serve.protocol`.  The shape is the classic single-writer
server:

* the **accept loop** never executes queries — per-connection handlers
  parse frames, run *admission control*, and enqueue accepted work;
* one **worker task** drains the bounded request queue and executes
  queries strictly serially against the simulation, so the world state
  stays exactly as deterministic as an in-process run: replaying the
  same seeded event list over the wire answers bit-identically to
  ``Simulation.execute_query`` (the differential test's contract);
* **admission control** answers SHED instead of queueing unboundedly:
  a full queue or a per-client in-flight cap is a hard shed, and once
  the queue passes a low-water mark the server consults the M/M/1
  estimate (:func:`repro.ondemand.mmc_wait_time` on live EWMA-measured
  arrival/service rates — an unstable queue *raises*, which is treated
  as overload) and sheds requests whose expected wait exceeds the
  configured budget;
* **standing queries** (``QUERY`` frames with ``standing: true``)
  register with a lazily created
  :class:`~repro.continuous.ContinuousMonitor`; a ticker enqueues one
  tick per interval and answers are pushed to the owning sessions;
* an **idle reaper** closes sessions with no traffic and no in-flight
  work past ``idle_timeout``;
* with ``trace_dir`` set, every connection writes its own JSONL trace
  (one ``serve.request`` root per request wrapping the simulator's
  ``query`` span tree) that ``repro.cli trace-summary`` understands.

The worker runs simulator queries inline on the event loop (~1 ms per
query at bench scales); the queue bound — not thread parallelism — is
what keeps the station responsive under overload.
"""

from __future__ import annotations

import asyncio
import math
import os
from dataclasses import dataclass
from time import perf_counter
from typing import Any

from ..errors import ExperimentError, ReproError, ServeError
from ..obs import JsonLinesExporter, MetricsRegistry, NO_TRACER, Tracer
from ..ondemand import mmc_wait_time
from ..workloads import ParameterSet, QueryEvent, QueryKind
from .protocol import (
    ENCODING_JSON,
    ENCODINGS,
    MAX_FRAME,
    MSG_HELLO,
    MSG_QUERY,
    MSG_UPDATE,
    PROTOCOL_VERSION,
    FrameError,
    FrameTooLargeError,
    answer_message,
    encode_frame,
    error_message,
    read_frame,
    shed_message,
)
from .session import ClientSession

__all__ = ["BaseStationServer", "ServeConfig"]

# EWMA smoothing for the live arrival/service rate estimates feeding
# the M/M/1 admission model.
_RATE_ALPHA = 0.2


@dataclass(frozen=True, slots=True)
class ServeConfig:
    """Serving-layer knobs (the world itself comes from ParameterSet).

    * ``queue_limit`` — bound on queued-but-unserved requests; a full
      queue is a hard SHED;
    * ``max_inflight`` — per-client cap on outstanding requests;
    * ``max_wait_s`` / ``overload_depth`` — soft admission: once the
      queue holds at least ``overload_depth`` requests, shed when the
      live M/M/1 wait estimate exceeds ``max_wait_s`` (``None`` depth
      defaults to half the queue limit);
    * ``idle_timeout`` — reap sessions idle this long with nothing in
      flight;
    * ``tick_interval`` — wall seconds between continuous-monitor
      ticks (also the simulated seconds each tick advances); ``0``
      disables the ticker;
    * ``service_delay`` — artificial per-request asyncio delay, the
      overload-testing throttle (defaults off);
    * ``warmup_queries`` — one-shot workload run before the socket
      binds, to warm the fleet's caches;
    * ``trace_dir`` — write one JSONL span trace per connection here.
    """

    host: str = "127.0.0.1"
    port: int = 0
    queue_limit: int = 64
    max_inflight: int = 8
    max_wait_s: float = 2.0
    overload_depth: int | None = None
    idle_timeout: float = 60.0
    tick_interval: float = 1.0
    service_delay: float = 0.0
    warmup_queries: int = 0
    warmup_kind: QueryKind = QueryKind.KNN
    trace_dir: str | None = None
    max_frame: int = MAX_FRAME

    def __post_init__(self) -> None:
        if self.queue_limit < 1:
            raise ServeError(f"queue_limit must be >= 1, got {self.queue_limit}")
        if self.max_inflight < 1:
            raise ServeError(
                f"max_inflight must be >= 1, got {self.max_inflight}"
            )
        if self.max_wait_s <= 0:
            raise ServeError(f"max_wait_s must be > 0, got {self.max_wait_s}")
        if self.idle_timeout <= 0:
            raise ServeError(
                f"idle_timeout must be > 0, got {self.idle_timeout}"
            )
        if self.service_delay < 0 or self.tick_interval < 0:
            raise ServeError("service_delay/tick_interval must be >= 0")
        if self.warmup_queries < 0:
            raise ServeError(
                f"warmup_queries must be >= 0, got {self.warmup_queries}"
            )

    @property
    def soft_depth(self) -> int:
        if self.overload_depth is not None:
            return self.overload_depth
        return max(1, self.queue_limit // 2)


@dataclass(slots=True)
class _Job:
    """One unit of worker work: a query, a registration, or a tick."""

    kind: str  # "query" | "standing" | "tick"
    session: ClientSession | None = None
    message: dict[str, Any] | None = None
    event: QueryEvent | None = None


class BaseStationServer:
    """Serve one simulated world's base station over TCP."""

    def __init__(
        self,
        params: ParameterSet,
        seed: int = 0,
        config: ServeConfig | None = None,
        **sim_kwargs: Any,
    ):
        from ..experiments import Simulation  # late: avoids import cycle

        self.params = params
        self.seed = seed
        self.config = config if config is not None else ServeConfig()
        self.metrics = MetricsRegistry()
        self.sim = Simulation(
            params, seed=seed, registry=self.metrics, **sim_kwargs
        )
        self.queue: asyncio.Queue[_Job] = asyncio.Queue(
            maxsize=self.config.queue_limit
        )
        self.sessions: dict[int, ClientSession] = {}
        self.monitor = None  # lazily created ContinuousMonitor
        self.port: int | None = None
        self.sim_time = 0.0
        self._next_session = 0
        self._next_standing = 0
        self._standing_owner: dict[int, ClientSession] = {}
        self._server: asyncio.AbstractServer | None = None
        self._tasks: list[asyncio.Task] = []
        self._last_arrival: float | None = None
        self._arrival_gap_ewma: float | None = None
        self._service_ewma: float | None = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Warm up, bind, and spin up worker/reaper/ticker tasks."""
        if self._server is not None:
            raise ServeError("server already started")
        cfg = self.config
        if cfg.warmup_queries:
            collector = self.sim.run_workload(
                cfg.warmup_kind, 0, cfg.warmup_queries
            )
            self.sim_time = max(
                self.sim_time, max(r.time for r in collector.records)
            )
        if cfg.trace_dir:
            os.makedirs(cfg.trace_dir, exist_ok=True)
        self._server = await asyncio.start_server(
            self._handle_connection, cfg.host, cfg.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._tasks = [
            asyncio.create_task(self._worker(), name="serve-worker"),
            asyncio.create_task(self._reaper(), name="serve-reaper"),
        ]
        if cfg.tick_interval > 0:
            self._tasks.append(
                asyncio.create_task(self._ticker(), name="serve-ticker")
            )

    async def stop(self) -> None:
        """Cancel tasks, close every session, release the socket."""
        for task in self._tasks:
            task.cancel()
        if self._tasks:
            await asyncio.gather(*self._tasks, return_exceptions=True)
        self._tasks = []
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for session in list(self.sessions.values()):
            self._close_session(session)
            writer = session.writer
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def serve_forever(self) -> None:
        if self._server is None:
            raise ServeError("start() the server first")
        await self._server.serve_forever()

    def snapshot(self) -> dict[str, float]:
        """Current serve counters (``serve.*``) as a plain dict."""
        return {
            name: counter.value
            for name, counter in sorted(self.metrics._counters.items())
            if name.startswith("serve.")
        }

    def _count(self, name: str, amount: float = 1.0) -> None:
        self.metrics.counter(name).inc(amount)

    # ------------------------------------------------------------------
    # Connection handling (accept side: parse, admit, enqueue)
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader, writer) -> None:
        self._count("serve.connections")
        cfg = self.config
        session: ClientSession | None = None
        try:
            # The HELLO exchange is always JSON, both directions: the
            # requested encoding only takes effect once both sides have
            # seen the negotiation result.
            first = await read_frame(reader, cfg.max_frame)
            if first is None:
                return
            if first["type"] != MSG_HELLO:
                await self._write(
                    writer,
                    error_message(
                        f"expected HELLO, got {first['type']}", code="protocol"
                    ),
                )
                return
            encoding = first.get("encoding", ENCODING_JSON)
            if encoding not in ENCODINGS:
                await self._write(
                    writer,
                    error_message(
                        f"unknown wire encoding {encoding!r}", code="protocol"
                    ),
                )
                return
            session = self._open_session(first, writer, encoding)
            await self._write(
                writer,
                {
                    "type": MSG_HELLO,
                    "proto": PROTOCOL_VERSION,
                    "session": session.session_id,
                    "host_id": session.host_id,
                    "max_inflight": cfg.max_inflight,
                    "max_frame": cfg.max_frame,
                    "encoding": encoding,
                },
            )
            while True:
                message = await read_frame(
                    reader, cfg.max_frame, session.encoding
                )
                if message is None:
                    break
                session.touch(self._now())
                await self._dispatch(session, message)
        except FrameError as exc:
            # The stream can no longer be trusted: answer once
            # (best effort) and close.  The accept loop itself is
            # untouched — the next connection is served normally.
            self._count("serve.frame_errors")
            if session is not None:
                session.record(self._now(), "frame-error", error=str(exc))
            await self._write(
                writer,
                error_message(str(exc), code="framing"),
                session.encoding if session is not None else ENCODING_JSON,
            )
        except (ConnectionError, OSError):
            self._count("serve.connection_errors")
        finally:
            if session is not None:
                self._close_session(session)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    def _open_session(
        self, hello: dict[str, Any], writer, encoding: str = ENCODING_JSON
    ) -> ClientSession:
        sid = self._next_session
        self._next_session += 1
        client_id = str(hello.get("client_id", f"client-{sid}"))
        tracer = exporter = None
        if self.config.trace_dir:
            exporter = JsonLinesExporter(
                os.path.join(self.config.trace_dir, f"conn-{sid:05d}.jsonl")
            )
            tracer = Tracer(sink=exporter)
        session = ClientSession(
            session_id=sid,
            client_id=client_id,
            writer=writer,
            host_id=sid % self.params.mh_number,
            now=self._now(),
            tracer=tracer,
            exporter=exporter,
            encoding=encoding,
        )
        session.record(self._now(), "hello", client_id=client_id)
        self.sessions[sid] = session
        return session

    def _close_session(self, session: ClientSession) -> None:
        if session.closed:
            return
        session.closed = True
        for standing_id in sorted(session.standing_ids):
            self._standing_owner.pop(standing_id, None)
            if self.monitor is not None:
                try:
                    self.monitor.remove_query(standing_id)
                except ExperimentError:
                    pass
        session.standing_ids.clear()
        if session.exporter is not None:
            session.exporter.write_metrics(self.metrics)
            session.exporter.close()
        self.sessions.pop(session.session_id, None)

    async def _dispatch(
        self, session: ClientSession, message: dict[str, Any]
    ) -> None:
        mtype = message["type"]
        if mtype == MSG_QUERY:
            await self._admit(session, message)
        elif mtype == MSG_UPDATE:
            self._handle_update(session, message)
        elif mtype == MSG_HELLO:
            session.errors += 1
            self._count("serve.protocol_errors")
            await self._send(
                session, error_message("duplicate HELLO", code="protocol")
            )
        else:
            # Well-formed frame, nonsense type: answer ERROR, stay up.
            session.errors += 1
            self._count("serve.protocol_errors")
            await self._send(
                session,
                error_message(
                    f"unknown message type {mtype!r}",
                    request_id=message.get("id"),
                    code="unknown-type",
                ),
            )

    def _handle_update(
        self, session: ClientSession, message: dict[str, Any]
    ) -> None:
        x, y = message.get("x"), message.get("y")
        if not isinstance(x, (int, float)) or not isinstance(y, (int, float)):
            session.errors += 1
            self._count("serve.protocol_errors")
            return
        when = message.get("time")
        session.report_location(
            float(x), float(y), float(when) if when is not None else None
        )
        session.record(self._now(), "update", x=float(x), y=float(y))
        self._count("serve.updates")

    # ------------------------------------------------------------------
    # Admission control
    # ------------------------------------------------------------------
    async def _admit(
        self, session: ClientSession, message: dict[str, Any]
    ) -> None:
        request_id = message.get("id")
        try:
            event = self._event_from(session, message)
        except ServeError as exc:
            session.errors += 1
            self._count("serve.bad_requests")
            await self._send(
                session,
                error_message(str(exc), request_id=request_id),
            )
            return
        self._note_arrival()
        reason = self._shed_reason(session)
        if reason is not None:
            session.shed += 1
            session.record(self._now(), "shed", reason=reason, id=request_id)
            self._count("serve.shed")
            self._count(f"serve.shed.{reason}")
            await self._send(
                session, shed_message(request_id, reason, self.queue.qsize())
            )
            return
        kind = "standing" if message.get("standing") else "query"
        session.inflight += 1
        self._count("serve.accepted")
        self.queue.put_nowait(
            _Job(kind=kind, session=session, message=message, event=event)
        )

    def _shed_reason(self, session: ClientSession) -> str | None:
        if session.inflight >= self.config.max_inflight:
            return "client-cap"
        if self.queue.full():
            return "queue-full"
        if self.queue.qsize() >= self.config.soft_depth:
            if self.estimated_wait() > self.config.max_wait_s:
                return "overload"
        return None

    def estimated_wait(self) -> float:
        """Expected queueing wait from live EWMA rates (M/M/1).

        An unstable or degenerate measured regime raises inside
        :func:`mmc_wait_time`; admission treats that as an infinite
        wait — the typed-error contract the ondemand fix guarantees.
        """
        gap, service = self._arrival_gap_ewma, self._service_ewma
        if not gap or not service or gap <= 0.0 or service <= 0.0:
            return 0.0
        try:
            return mmc_wait_time(1.0 / gap, 1.0 / service, 1)
        except ExperimentError:
            return math.inf

    def _note_arrival(self) -> None:
        now = self._now()
        if self._last_arrival is not None:
            gap = now - self._last_arrival
            if self._arrival_gap_ewma is None:
                self._arrival_gap_ewma = gap
            else:
                self._arrival_gap_ewma += _RATE_ALPHA * (
                    gap - self._arrival_gap_ewma
                )
        self._last_arrival = now

    def _note_service(self, seconds: float) -> None:
        if self._service_ewma is None:
            self._service_ewma = seconds
        else:
            self._service_ewma += _RATE_ALPHA * (seconds - self._service_ewma)

    # ------------------------------------------------------------------
    # Request validation
    # ------------------------------------------------------------------
    def _event_from(
        self, session: ClientSession, message: dict[str, Any]
    ) -> QueryEvent:
        kind_raw = message.get("kind", "knn")
        if kind_raw not in ("knn", "window"):
            raise ServeError(f"unknown query kind {kind_raw!r}")
        kind = QueryKind.KNN if kind_raw == "knn" else QueryKind.WINDOW
        host_id = message.get("host_id", session.host_id)
        if not isinstance(host_id, int) or isinstance(host_id, bool) or not (
            0 <= host_id < self.params.mh_number
        ):
            raise ServeError(f"host_id out of range: {host_id!r}")
        time = message.get("time", self.sim_time)
        if not isinstance(time, (int, float)) or not math.isfinite(time) or (
            time < 0
        ):
            raise ServeError(f"invalid query time: {time!r}")
        if kind is QueryKind.KNN:
            k = message.get("k", self.params.knn_k)
            if not isinstance(k, int) or isinstance(k, bool) or k < 1:
                raise ServeError(f"k must be a positive integer, got {k!r}")
            return QueryEvent(
                time=float(time), host_id=host_id, kind=kind, k=k
            )
        area = message.get("window_area", self.params.window_area_mi2)
        if not isinstance(area, (int, float)) or not (
            math.isfinite(area) and area > 0
        ):
            raise ServeError(f"invalid window_area: {area!r}")
        offset = message.get("center_offset", (0.0, 0.0))
        if (
            not isinstance(offset, (list, tuple))
            or len(offset) != 2
            or not all(
                isinstance(v, (int, float)) and math.isfinite(v)
                for v in offset
            )
        ):
            raise ServeError(f"invalid center_offset: {offset!r}")
        return QueryEvent(
            time=float(time),
            host_id=host_id,
            kind=kind,
            window_area=float(area),
            center_offset=(float(offset[0]), float(offset[1])),
        )

    # ------------------------------------------------------------------
    # The worker: strictly serial execution against the simulation
    # ------------------------------------------------------------------
    async def _worker(self) -> None:
        while True:
            job = await self.queue.get()
            try:
                if job.kind == "tick":
                    await self._run_tick()
                elif job.kind == "standing":
                    await self._register_standing(job)
                else:
                    await self._serve_query(job)
            finally:
                self.queue.task_done()

    async def _serve_query(self, job: _Job) -> None:
        session, event = job.session, job.event
        if self.config.service_delay > 0:
            await asyncio.sleep(self.config.service_delay)
        request_id = job.message.get("id")
        started = perf_counter()
        try:
            result = self._execute(session, request_id, event)
        except ReproError as exc:
            session.errors += 1
            self._count("serve.errors")
            reply = error_message(
                str(exc), request_id=request_id, code="query-failed"
            )
        except asyncio.CancelledError:
            raise
        except Exception as exc:  # noqa: BLE001 - the worker must survive
            session.errors += 1
            self._count("serve.errors")
            reply = error_message(
                f"internal error: {exc}", request_id=request_id, code="internal"
            )
        else:
            record = result.record
            session.answered += 1
            self._count("serve.answered")
            self.metrics.histogram("serve.service_wall_s").observe(
                perf_counter() - started
            )
            reply = answer_message(
                request_id,
                [poi.poi_id for poi in result.answers],
                record.resolution.value,
                record.access_latency,
                record.tuning_packets,
                host_id=event.host_id,
                kind=event.kind.value,
            )
        finally:
            session.inflight -= 1
            self._note_service(perf_counter() - started)
        session.record(self._now(), "answer", id=request_id)
        try:
            await self._send(session, reply)
        except FrameTooLargeError as exc:
            # The reply itself blew the frame bound: the stream is
            # still intact (nothing was written), so answer with a
            # typed error instead of killing the worker or the session.
            session.errors += 1
            self._count("serve.oversized_replies")
            await self._send(
                session,
                error_message(
                    str(exc), request_id=request_id, code="too-large"
                ),
            )

    def _execute(self, session: ClientSession, request_id, event: QueryEvent):
        tracer = session.tracer
        self.sim_time = max(self.sim_time, event.time)
        if tracer is None:
            return self.sim.execute_query(event)
        with tracer.span("serve.request") as span:
            span.set(
                session=session.session_id,
                client_id=session.client_id,
                request_id=request_id,
                queue_depth=self.queue.qsize(),
            )
            self._attach_tracer(tracer)
            try:
                return self.sim.execute_query(event)
            finally:
                self._attach_tracer(None)

    def _attach_tracer(self, tracer) -> None:
        """Point the simulation's span sinks at one connection's tracer.

        Safe because the worker is the only query executor: no two
        requests ever hold the simulator (or its tracer slots)
        concurrently.
        """
        live = tracer if tracer is not None else NO_TRACER
        self.sim.tracer = live
        self.sim.station.client.tracer = live

    async def _register_standing(self, job: _Job) -> None:
        from ..continuous import ContinuousMonitor, StandingQuery

        session = job.session
        request_id = job.message.get("id")
        try:
            standing_id = self._next_standing
            query = StandingQuery(query_id=standing_id, template=job.event)
            if self.monitor is None:
                self.monitor = ContinuousMonitor(
                    self.sim, [query], registry=self.metrics
                )
            else:
                self.monitor.add_query(query)
            self._next_standing += 1
        except ReproError as exc:
            session.errors += 1
            self._count("serve.errors")
            reply = error_message(
                str(exc), request_id=request_id, code="standing-failed"
            )
        else:
            session.standing_ids.add(standing_id)
            self._standing_owner[standing_id] = session
            self._count("serve.standing_registered")
            session.record(self._now(), "standing", standing_id=standing_id)
            reply = {
                "type": "ANSWER",
                "id": request_id,
                "standing_id": standing_id,
                "registered": True,
            }
        finally:
            session.inflight -= 1
        await self._send(session, reply)

    async def _run_tick(self) -> None:
        if self.monitor is None or not self.monitor.queries:
            return
        self.sim_time += self.config.tick_interval
        answers = self.monitor.tick(self.sim_time)
        self._count("serve.ticks")
        for standing_id, pois in answers.items():
            session = self._standing_owner.get(standing_id)
            if session is None or session.closed:
                continue
            await self._send(
                session,
                {
                    "type": "ANSWER",
                    "standing_id": standing_id,
                    "tick_time": self.sim_time,
                    "poi_ids": [poi.poi_id for poi in pois],
                    "plan": "standing",
                },
            )

    # ------------------------------------------------------------------
    # Background tasks
    # ------------------------------------------------------------------
    async def _ticker(self) -> None:
        while True:
            await asyncio.sleep(self.config.tick_interval)
            if self.monitor is not None and self.monitor.queries:
                await self.queue.put(_Job(kind="tick"))

    async def _reaper(self) -> None:
        interval = max(0.05, min(self.config.idle_timeout / 4, 1.0))
        while True:
            await asyncio.sleep(interval)
            now = self._now()
            for session in list(self.sessions.values()):
                if session.inflight:
                    continue
                if session.idle_for(now) <= self.config.idle_timeout:
                    continue
                self._count("serve.reaped")
                session.record(now, "reaped", idle_s=session.idle_for(now))
                # Closing the transport wakes the handler's read, which
                # runs the normal cleanup path.
                session.writer.close()

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    def _now(self) -> float:
        return asyncio.get_running_loop().time()

    async def _write(
        self,
        writer,
        message: dict[str, Any],
        encoding: str = ENCODING_JSON,
    ) -> bool:
        if writer.is_closing():
            return False
        try:
            writer.write(
                encode_frame(message, encoding, self.config.max_frame)
            )
            await writer.drain()
        except (ConnectionError, OSError):
            return False
        return True

    async def _send(self, session: ClientSession, message: dict[str, Any]):
        return await self._write(session.writer, message, session.encoding)
