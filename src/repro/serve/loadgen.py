"""Seeded load generation against a running base-station server.

Two pieces:

* :class:`ServeClient` — one framed connection with a background
  reader: requests carry client-assigned ids, replies resolve futures,
  so a client can keep many queries in flight (up to the server's
  advertised cap) or run strictly lockstep;
* :func:`run_load` — replays a :func:`repro.workloads.seeded_events`
  Table 3 workload over ``connections`` clients, optionally paced to a
  target QPS, and folds the replies into a :class:`LoadReport` —
  achieved QPS, client-side latency percentiles, answered/shed/error
  counts — the document ``repro.cli load`` writes as BENCH_PR8.json.

The workload is materialised *before* any traffic is sent, from the
dedicated ``seeded_events`` RNG stream: the same ``(params, kind,
seed, count)`` tuple always produces the identical event list, which
is what lets the differential test replay it in-process and demand
bit-identical answers (in ``lockstep`` mode arrival order over the
wire equals list order, so the server's world evolves exactly as a
local ``Simulation.execute_query`` loop would).
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any

from ..errors import ServeError
from ..workloads import ParameterSet, QueryEvent, QueryKind, seeded_events
from .protocol import (
    ENCODING_JSON,
    ENCODINGS,
    MAX_FRAME,
    MSG_ANSWER,
    MSG_HELLO,
    MSG_QUERY,
    MSG_SHED,
    MSG_UPDATE,
    FrameError,
    encode_frame,
    read_frame,
)

__all__ = ["LoadReport", "ServeClient", "run_load"]


class ServeClient:
    """One framed client connection with pipelined request/reply."""

    def __init__(
        self,
        host: str,
        port: int,
        client_id: str = "client",
        max_frame: int = MAX_FRAME,
        respect_cap: bool = True,
        encoding: str = ENCODING_JSON,
    ):
        if encoding not in ENCODINGS:
            raise ServeError(f"unknown wire encoding {encoding!r}")
        self.host = host
        self.port = port
        self.client_id = client_id
        self.max_frame = max_frame
        self.encoding = encoding
        # A well-behaved client stays under the server's advertised
        # per-client in-flight cap (HELLO `max_inflight`) and is never
        # shed for "client-cap"; overload experiments turn this off.
        self.respect_cap = respect_cap
        self._cap: asyncio.Semaphore | None = None
        self.reader: asyncio.StreamReader | None = None
        self.writer: asyncio.StreamWriter | None = None
        self.hello: dict[str, Any] | None = None
        self.pushes: list[dict[str, Any]] = []
        self._pending: dict[int, asyncio.Future] = {}
        self._next_id = 0
        self._reader_task: asyncio.Task | None = None

    # ------------------------------------------------------------------
    async def connect(self) -> dict[str, Any]:
        """Open the connection and complete the HELLO handshake.

        The HELLO exchange is always JSON; a binary client advertises
        ``"encoding": "binary"`` in it (a JSON client sends no key at
        all, keeping the legacy handshake bytes unchanged) and requires
        the server's echo before switching the stream over.
        """
        self.reader, self.writer = await asyncio.open_connection(
            self.host, self.port
        )
        hello: dict[str, Any] = {
            "type": MSG_HELLO, "client_id": self.client_id
        }
        if self.encoding != ENCODING_JSON:
            hello["encoding"] = self.encoding
        self.writer.write(encode_frame(hello))
        await self.writer.drain()
        reply = await read_frame(self.reader, self.max_frame)
        if reply is None or reply["type"] != MSG_HELLO:
            raise ServeError(f"handshake failed: {reply!r}")
        if self.encoding != ENCODING_JSON and (
            reply.get("encoding") != self.encoding
        ):
            raise ServeError(
                f"server did not accept {self.encoding!r} encoding:"
                f" {reply.get('encoding')!r}"
            )
        self.hello = reply
        if self.respect_cap and isinstance(reply.get("max_inflight"), int):
            self._cap = asyncio.Semaphore(reply["max_inflight"])
        self._reader_task = asyncio.create_task(
            self._read_loop(), name=f"reader-{self.client_id}"
        )
        return reply

    async def _read_loop(self) -> None:
        try:
            while True:
                message = await read_frame(
                    self.reader, self.max_frame, self.encoding
                )
                if message is None:
                    break
                request_id = message.get("id")
                future = (
                    self._pending.pop(request_id, None)
                    if request_id is not None
                    else None
                )
                if future is not None and not future.done():
                    future.set_result(message)
                else:
                    # Standing-query pushes and unsolicited errors.
                    self.pushes.append(message)
        except (FrameError, ConnectionError, OSError) as exc:
            self._fail_pending(exc)
        else:
            self._fail_pending(ServeError("connection closed by server"))

    def _fail_pending(self, exc: Exception) -> None:
        for future in self._pending.values():
            if not future.done():
                future.set_exception(exc)
        self._pending.clear()

    # ------------------------------------------------------------------
    async def request(self, message: dict[str, Any]) -> dict[str, Any]:
        """Send one id-tagged request and await its reply."""
        if self.writer is None:
            raise ServeError("client is not connected")
        if self._cap is not None:
            async with self._cap:
                return await self._request(message)
        return await self._request(message)

    async def _request(self, message: dict[str, Any]) -> dict[str, Any]:
        request_id = self._next_id
        self._next_id += 1
        message = dict(message, id=request_id)
        future = asyncio.get_running_loop().create_future()
        self._pending[request_id] = future
        self.writer.write(
            encode_frame(message, self.encoding, self.max_frame)
        )
        await self.writer.drain()
        return await future

    async def query_event(self, event: QueryEvent) -> dict[str, Any]:
        """Issue one workload event as a QUERY and await the reply."""
        return await self.request(query_message(event))

    async def update(self, x: float, y: float, time: float | None = None):
        """Fire-and-forget location report."""
        message: dict[str, Any] = {"type": MSG_UPDATE, "x": x, "y": y}
        if time is not None:
            message["time"] = time
        self.writer.write(
            encode_frame(message, self.encoding, self.max_frame)
        )
        await self.writer.drain()

    async def close(self) -> None:
        if self._reader_task is not None:
            self._reader_task.cancel()
            try:
                await self._reader_task
            except (asyncio.CancelledError, Exception):  # noqa: BLE001
                pass
        if self.writer is not None:
            self.writer.close()
            try:
                await self.writer.wait_closed()
            except (ConnectionError, OSError):
                pass


def query_message(event: QueryEvent) -> dict[str, Any]:
    """A workload :class:`QueryEvent` as its QUERY wire message."""
    message: dict[str, Any] = {
        "type": MSG_QUERY,
        "kind": event.kind.value,
        "host_id": event.host_id,
        "time": event.time,
    }
    if event.kind is QueryKind.KNN:
        message["k"] = event.k
    else:
        message["window_area"] = event.window_area
        message["center_offset"] = list(event.center_offset)
    return message


# ----------------------------------------------------------------------
# The load run
# ----------------------------------------------------------------------
@dataclass(slots=True)
class LoadReport:
    """What one load run achieved, JSON-ready via :meth:`to_dict`.

    ``replies`` holds the raw reply message per event (event-list
    order) for differential checks; it is deliberately excluded from
    the serialised report.
    """

    kind: str
    seed: int
    count: int
    connections: int
    lockstep: bool
    offered_qps: float | None
    elapsed_s: float
    achieved_qps: float
    answered: int
    shed: int
    errors: int
    shed_reasons: dict[str, int]
    latency_s: dict[str, float]
    encoding: str = "json"
    replies: list[dict[str, Any]] = field(default_factory=list, repr=False)

    @property
    def clean(self) -> bool:
        """Every event answered: nothing shed, nothing errored."""
        return self.shed == 0 and self.errors == 0

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "seed": self.seed,
            "count": self.count,
            "connections": self.connections,
            "lockstep": self.lockstep,
            "encoding": self.encoding,
            "offered_qps": self.offered_qps,
            "elapsed_s": self.elapsed_s,
            "achieved_qps": self.achieved_qps,
            "answered": self.answered,
            "shed": self.shed,
            "errors": self.errors,
            "shed_reasons": dict(sorted(self.shed_reasons.items())),
            "latency_s": self.latency_s,
        }


def _percentile(ordered: list[float], q: float) -> float:
    """Linear-interpolated percentile of an already-sorted list."""
    if not ordered:
        return 0.0
    if len(ordered) == 1:
        return ordered[0]
    rank = (len(ordered) - 1) * q
    lo = int(rank)
    hi = min(lo + 1, len(ordered) - 1)
    return ordered[lo] + (ordered[hi] - ordered[lo]) * (rank - lo)


def _latency_stats(latencies: list[float]) -> dict[str, float]:
    ordered = sorted(latencies)
    if not ordered:
        return {"p50": 0.0, "p95": 0.0, "p99": 0.0, "mean": 0.0, "max": 0.0}
    return {
        "p50": _percentile(ordered, 0.50),
        "p95": _percentile(ordered, 0.95),
        "p99": _percentile(ordered, 0.99),
        "mean": sum(ordered) / len(ordered),
        "max": ordered[-1],
    }


async def run_load(
    params: ParameterSet,
    port: int,
    host: str = "127.0.0.1",
    kind: QueryKind = QueryKind.KNN,
    seed: int = 0,
    count: int = 100,
    connections: int = 4,
    qps: float | None = None,
    lockstep: bool = False,
    respect_cap: bool = True,
    client_prefix: str = "load",
    encoding: str = ENCODING_JSON,
) -> LoadReport:
    """Replay a seeded workload against a server and measure it.

    ``lockstep`` sends events one at a time in list order (the
    determinism mode the differential test uses); otherwise events are
    launched concurrently round-robin over the connections, paced to
    ``qps`` when given (``None`` = as fast as the clients can go).
    ``respect_cap=False`` ignores the server's advertised in-flight
    cap — the deliberate-overload mode that provokes SHED replies.
    """
    if connections < 1:
        raise ServeError(f"connections must be >= 1, got {connections}")
    if qps is not None and qps <= 0:
        raise ServeError(f"qps must be > 0, got {qps}")
    events = seeded_events(params, kind, seed, count)
    clients = [
        ServeClient(
            host,
            port,
            client_id=f"{client_prefix}-{i}",
            respect_cap=respect_cap,
            encoding=encoding,
        )
        for i in range(connections)
    ]
    replies: list[dict[str, Any]] = [None] * len(events)  # type: ignore[list-item]
    latencies: list[float] = []
    try:
        for client in clients:
            await client.connect()
        started = perf_counter()

        async def one(index: int, event: QueryEvent) -> None:
            sent = perf_counter()
            reply = await clients[index % connections].query_event(event)
            latencies.append(perf_counter() - sent)
            replies[index] = reply

        if lockstep:
            for index, event in enumerate(events):
                await one(index, event)
        else:
            loop = asyncio.get_running_loop()
            t0 = loop.time()
            tasks = []
            for index, event in enumerate(events):
                if qps is not None:
                    delay = t0 + index / qps - loop.time()
                    if delay > 0:
                        await asyncio.sleep(delay)
                tasks.append(asyncio.create_task(one(index, event)))
            await asyncio.gather(*tasks)
        elapsed = perf_counter() - started
    finally:
        for client in clients:
            await client.close()

    answered = shed = errors = 0
    shed_reasons: dict[str, int] = {}
    for reply in replies:
        if reply is None:
            errors += 1
        elif reply["type"] == MSG_ANSWER:
            answered += 1
        elif reply["type"] == MSG_SHED:
            shed += 1
            reason = str(reply.get("reason", "unknown"))
            shed_reasons[reason] = shed_reasons.get(reason, 0) + 1
        else:
            errors += 1
    return LoadReport(
        kind=kind.value,
        seed=seed,
        count=count,
        connections=connections,
        lockstep=lockstep,
        offered_qps=qps,
        elapsed_s=elapsed,
        achieved_qps=count / elapsed if elapsed > 0 else 0.0,
        answered=answered,
        shed=shed,
        errors=errors,
        shed_reasons=shed_reasons,
        latency_s=_latency_stats(latencies),
        encoding=encoding,
        replies=list(replies),
    )
