"""repro.serve — the asyncio base-station serving layer.

The paper's base station is a *server*: it broadcasts the on-air index
and answers on-demand spatial queries from many mobile clients.  This
package is the process you can point traffic at:

* **protocol** — a length-prefixed framed wire protocol (4-byte
  big-endian length + one JSON document) with six message types:
  HELLO, QUERY, UPDATE, ANSWER, ERROR, SHED;
* **session** — per-client connection state: client id, last reported
  location, outstanding-query count, and a bounded trace buffer;
* **server** — :class:`BaseStationServer`: one accept loop, one
  bounded request queue drained by a serialised worker over a fully
  wired :class:`~repro.experiments.Simulation`, admission control
  (queue bound, per-client in-flight cap, M/M/c overload estimate from
  live measured rates) answering SHED instead of queueing unboundedly,
  idle-session reaping, and per-connection JSONL span export;
* **loadgen** — the traffic side: replays seeded Table 3 workloads at
  a configurable QPS over N connections and reports achieved QPS,
  latency percentiles, and shed counts (``BENCH_PR8.json``).
"""

from .loadgen import LoadReport, ServeClient, run_load
from .protocol import (
    FrameError,
    MAX_FRAME,
    MSG_ANSWER,
    MSG_ERROR,
    MSG_HELLO,
    MSG_QUERY,
    MSG_SHED,
    MSG_UPDATE,
    PROTOCOL_VERSION,
    encode_frame,
    read_frame,
)
from .server import BaseStationServer, ServeConfig
from .session import ClientSession

__all__ = [
    "BaseStationServer",
    "ClientSession",
    "FrameError",
    "LoadReport",
    "MAX_FRAME",
    "MSG_ANSWER",
    "MSG_ERROR",
    "MSG_HELLO",
    "MSG_QUERY",
    "MSG_SHED",
    "MSG_UPDATE",
    "PROTOCOL_VERSION",
    "ServeClient",
    "ServeConfig",
    "encode_frame",
    "read_frame",
    "run_load",
]
