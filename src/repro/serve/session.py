"""Per-client session state behind the serving layer.

One :class:`ClientSession` per live connection: who the client is,
where it last reported itself (UPDATE frames), how many of its
requests are in flight (the per-client admission cap), which standing
queries it owns, and a bounded ring of recent protocol events — the
trace buffer an operator reads when a client misbehaves.  The session
also owns the connection's span tracer/exporter when per-connection
tracing is on.
"""

from __future__ import annotations

from collections import deque
from typing import Any

from ..geometry import Point

__all__ = ["ClientSession"]


class ClientSession:
    """State for one connected mobile client."""

    __slots__ = (
        "session_id",
        "client_id",
        "writer",
        "host_id",
        "location",
        "location_time",
        "inflight",
        "answered",
        "shed",
        "errors",
        "updates",
        "standing_ids",
        "last_active",
        "closed",
        "trace",
        "tracer",
        "exporter",
        "encoding",
    )

    def __init__(
        self,
        session_id: int,
        client_id: str,
        writer,
        host_id: int,
        now: float,
        trace_limit: int = 256,
        tracer=None,
        exporter=None,
        encoding: str = "json",
    ):
        self.session_id = session_id
        self.client_id = client_id
        self.writer = writer
        # Negotiated at HELLO; every post-HELLO frame both ways uses it.
        self.encoding = encoding
        # The simulated host this session fronts when a QUERY carries
        # no explicit host_id (assigned round-robin at HELLO).
        self.host_id = host_id
        self.location: Point | None = None
        self.location_time: float | None = None
        self.inflight = 0
        self.answered = 0
        self.shed = 0
        self.errors = 0
        self.updates = 0
        self.standing_ids: set[int] = set()
        self.last_active = now
        self.closed = False
        self.trace: deque[tuple[float, str, dict[str, Any]]] = deque(
            maxlen=trace_limit
        )
        self.tracer = tracer
        self.exporter = exporter

    # ------------------------------------------------------------------
    def touch(self, now: float) -> None:
        self.last_active = now

    def record(self, now: float, event: str, **fields: Any) -> None:
        """Append one event to the bounded trace buffer."""
        self.trace.append((now, event, fields))

    def idle_for(self, now: float) -> float:
        return now - self.last_active

    def report_location(self, x: float, y: float, when: float | None) -> None:
        self.location = Point(x, y)
        self.location_time = when
        self.updates += 1

    # ------------------------------------------------------------------
    def describe(self) -> dict[str, Any]:
        """JSON-ready operator view of the session."""
        return {
            "session": self.session_id,
            "client_id": self.client_id,
            "host_id": self.host_id,
            "inflight": self.inflight,
            "answered": self.answered,
            "shed": self.shed,
            "errors": self.errors,
            "updates": self.updates,
            "standing": sorted(self.standing_ids),
            "location": (
                [self.location.x, self.location.y]
                if self.location is not None
                else None
            ),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ClientSession(#{self.session_id} {self.client_id!r}"
            f" inflight={self.inflight} answered={self.answered})"
        )
