"""The framed wire protocol between base station and mobile clients.

A frame is a 4-byte big-endian unsigned length followed by exactly
that many bytes of UTF-8 JSON encoding one object with a ``type``
field.  Six types exist:

========  =========  ====================================================
type      direction  meaning
========  =========  ====================================================
HELLO     both       session open: the client introduces itself, the
                     server answers with the session id and its limits
QUERY     c -> s     one spatial query (kNN or window) or a standing
                     registration (``standing: true``)
UPDATE    c -> s     location report; no reply (fire-and-forget)
ANSWER    s -> c     a query answer: POI ids, plan kind, latencies
ERROR     s -> c     a refused frame or a failed request
SHED      s -> c     admission control refused the request (queue full,
                     per-client cap, or overload estimate)
========  =========  ====================================================

Framing errors — truncated length prefix, oversized frame, mid-frame
disconnect, bytes that are not a JSON object — raise
:class:`FrameError`; they mean the stream can no longer be trusted and
the connection must close.  A *well-formed* frame with an unknown type
or bad fields is answered with an ERROR frame and the connection stays
up, so one buggy request never kills a session.

JSON (not msgpack) keeps the protocol dependency-free and greppable;
the length prefix makes it trivially re-framable from any language.
"""

from __future__ import annotations

import asyncio
import json
import struct
from typing import Any

from ..errors import ServeError

__all__ = [
    "FrameError",
    "HEADER",
    "MAX_FRAME",
    "MESSAGE_TYPES",
    "MSG_ANSWER",
    "MSG_ERROR",
    "MSG_HELLO",
    "MSG_QUERY",
    "MSG_SHED",
    "MSG_UPDATE",
    "PROTOCOL_VERSION",
    "answer_message",
    "decode_payload",
    "encode_frame",
    "error_message",
    "read_frame",
    "shed_message",
]

PROTOCOL_VERSION = 1

HEADER = struct.Struct(">I")

# Generous for answers (a few hundred POI ids) yet small enough that a
# hostile length prefix cannot balloon one connection's buffer.
MAX_FRAME = 256 * 1024

MSG_HELLO = "HELLO"
MSG_QUERY = "QUERY"
MSG_UPDATE = "UPDATE"
MSG_ANSWER = "ANSWER"
MSG_ERROR = "ERROR"
MSG_SHED = "SHED"

MESSAGE_TYPES = frozenset(
    {MSG_HELLO, MSG_QUERY, MSG_UPDATE, MSG_ANSWER, MSG_ERROR, MSG_SHED}
)


class FrameError(ServeError):
    """The byte stream violated the framing contract; close it."""


def encode_frame(message: dict[str, Any]) -> bytes:
    """One message -> length-prefixed bytes ready for a transport."""
    payload = json.dumps(message, separators=(",", ":")).encode("utf-8")
    if len(payload) > MAX_FRAME:
        raise FrameError(
            f"frame of {len(payload)} bytes exceeds MAX_FRAME ({MAX_FRAME})"
        )
    return HEADER.pack(len(payload)) + payload


def decode_payload(payload: bytes) -> dict[str, Any]:
    """Frame payload -> message dict; the ``type`` must be a string."""
    try:
        message = json.loads(payload)
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise FrameError(f"frame payload is not valid JSON: {exc}") from exc
    if not isinstance(message, dict):
        raise FrameError(
            f"frame payload must be a JSON object, got {type(message).__name__}"
        )
    if not isinstance(message.get("type"), str):
        raise FrameError("frame payload is missing a string 'type' field")
    return message


async def read_frame(
    reader: asyncio.StreamReader, max_frame: int = MAX_FRAME
) -> dict[str, Any] | None:
    """Read one frame; ``None`` on a clean EOF at a frame boundary.

    Anything else that cuts the stream short — a truncated length
    prefix, a length past ``max_frame``, a disconnect mid-payload —
    raises :class:`FrameError`.
    """
    try:
        header = await reader.readexactly(HEADER.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise FrameError(
            f"truncated length prefix ({len(exc.partial)} of {HEADER.size}"
            " bytes)"
        ) from exc
    (length,) = HEADER.unpack(header)
    if length == 0:
        raise FrameError("zero-length frame")
    if length > max_frame:
        raise FrameError(
            f"declared frame of {length} bytes exceeds limit ({max_frame})"
        )
    try:
        payload = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise FrameError(
            f"disconnect mid-frame ({len(exc.partial)} of {length} bytes)"
        ) from exc
    return decode_payload(payload)


# ----------------------------------------------------------------------
# Server-side reply constructors
# ----------------------------------------------------------------------
def answer_message(
    request_id: Any,
    poi_ids: list[int],
    plan: str,
    latency_s: float,
    tuning_packets: int,
    **extra: Any,
) -> dict[str, Any]:
    message: dict[str, Any] = {
        "type": MSG_ANSWER,
        "id": request_id,
        "poi_ids": poi_ids,
        "plan": plan,
        "latency_s": latency_s,
        "tuning_packets": tuning_packets,
    }
    message.update(extra)
    return message


def error_message(
    error: str, request_id: Any = None, code: str = "bad-request"
) -> dict[str, Any]:
    message: dict[str, Any] = {"type": MSG_ERROR, "error": error, "code": code}
    if request_id is not None:
        message["id"] = request_id
    return message


def shed_message(
    request_id: Any, reason: str, queue_depth: int
) -> dict[str, Any]:
    return {
        "type": MSG_SHED,
        "id": request_id,
        "reason": reason,
        "queue_depth": queue_depth,
    }
