"""The framed wire protocol between base station and mobile clients.

A frame is a 4-byte big-endian unsigned length followed by exactly
that many bytes of UTF-8 JSON encoding one object with a ``type``
field.  Six types exist:

========  =========  ====================================================
type      direction  meaning
========  =========  ====================================================
HELLO     both       session open: the client introduces itself, the
                     server answers with the session id and its limits
QUERY     c -> s     one spatial query (kNN or window) or a standing
                     registration (``standing: true``)
UPDATE    c -> s     location report; no reply (fire-and-forget)
ANSWER    s -> c     a query answer: POI ids, plan kind, latencies
ERROR     s -> c     a refused frame or a failed request
SHED      s -> c     admission control refused the request (queue full,
                     per-client cap, or overload estimate)
========  =========  ====================================================

Framing errors — truncated length prefix, oversized frame, mid-frame
disconnect, bytes that are not a JSON object — raise
:class:`FrameError`; they mean the stream can no longer be trusted and
the connection must close.  A *well-formed* frame with an unknown type
or bad fields is answered with an ERROR frame and the connection stays
up, so one buggy request never kills a session.

Two payload encodings share the framing:

* ``"json"`` (default) — UTF-8 JSON, dependency-free and greppable;
* ``"binary"`` — a :mod:`repro.codec` frame: hot QUERY/ANSWER shapes
  get dedicated struct-packed layouts, everything else rides the
  pickle-free value codec (:mod:`repro.codec.values`).  Negotiated at
  HELLO (which itself is *always* JSON, both directions): a client
  asks with ``"encoding": "binary"`` and the server echoes it back.

Either way the decode contract is identical — a payload must decode
to an object with a string ``type`` field, and malformed bytes raise
:class:`FrameError`.  Oversized *outgoing* messages raise the typed
:class:`FrameTooLargeError` before any bytes hit the transport.
"""

from __future__ import annotations

import asyncio
import json
import struct
from typing import Any

from ..codec import CodecError, frame as codec_frame, open_frame
from ..codec.core import TAG_SB_ANSWER, TAG_SB_GENERIC, TAG_SB_QUERY
from ..codec.values import read_value, write_value
from ..errors import ServeError

__all__ = [
    "ENCODINGS",
    "ENCODING_BINARY",
    "ENCODING_JSON",
    "FrameError",
    "FrameTooLargeError",
    "HEADER",
    "MAX_FRAME",
    "MESSAGE_TYPES",
    "MSG_ANSWER",
    "MSG_ERROR",
    "MSG_HELLO",
    "MSG_QUERY",
    "MSG_SHED",
    "MSG_UPDATE",
    "PROTOCOL_VERSION",
    "answer_message",
    "decode_payload",
    "encode_frame",
    "error_message",
    "read_frame",
    "shed_message",
]

PROTOCOL_VERSION = 1

HEADER = struct.Struct(">I")

# Generous for answers (a few hundred POI ids) yet small enough that a
# hostile length prefix cannot balloon one connection's buffer.
MAX_FRAME = 256 * 1024

MSG_HELLO = "HELLO"
MSG_QUERY = "QUERY"
MSG_UPDATE = "UPDATE"
MSG_ANSWER = "ANSWER"
MSG_ERROR = "ERROR"
MSG_SHED = "SHED"

MESSAGE_TYPES = frozenset(
    {MSG_HELLO, MSG_QUERY, MSG_UPDATE, MSG_ANSWER, MSG_ERROR, MSG_SHED}
)

ENCODING_JSON = "json"
ENCODING_BINARY = "binary"
ENCODINGS = frozenset({ENCODING_JSON, ENCODING_BINARY})


class FrameError(ServeError):
    """The byte stream violated the framing contract; close it."""


class FrameTooLargeError(FrameError):
    """An *outgoing* message encoded past the frame size bound."""


# ----------------------------------------------------------------------
# Binary payloads: struct-packed fast paths + generic value codec
# ----------------------------------------------------------------------
# The two hot shapes on a load-generator wire.  Anything that doesn't
# match exactly (standing registrations, extra fields, pushes) falls
# back to the generic value codec — same information, same strictness.
_QUERY_KNN_KEYS = frozenset({"type", "id", "kind", "host_id", "time", "k"})
_QUERY_WINDOW_KEYS = frozenset(
    {"type", "id", "kind", "host_id", "time", "window_area", "center_offset"}
)
_ANSWER_KEYS = frozenset(
    {
        "type",
        "id",
        "poi_ids",
        "plan",
        "latency_s",
        "tuning_packets",
        "host_id",
        "kind",
    }
)

_I64_MIN, _I64_MAX = -(2**63), 2**63 - 1


def _plain_int(value: Any) -> bool:
    return (
        type(value) is int and _I64_MIN <= value <= _I64_MAX
    )


def _encode_binary(message: dict[str, Any]) -> bytes:
    mtype = message.get("type")
    if mtype == MSG_QUERY:
        payload = _try_encode_query(message)
        if payload is not None:
            return payload
    elif mtype == MSG_ANSWER:
        payload = _try_encode_answer(message)
        if payload is not None:
            return payload
    writer = codec_frame(TAG_SB_GENERIC)
    write_value(writer, message)
    return writer.getvalue()


def _try_encode_query(message: dict[str, Any]) -> bytes | None:
    keys = message.keys()
    kind = message.get("kind")
    if kind == "knn":
        if keys != _QUERY_KNN_KEYS:
            return None
    elif kind == "window":
        if keys != _QUERY_WINDOW_KEYS:
            return None
        offset = message["center_offset"]
        if not (
            isinstance(offset, (list, tuple))
            and len(offset) == 2
            and all(isinstance(v, (int, float)) for v in offset)
        ):
            return None
        if not isinstance(message["window_area"], (int, float)):
            return None
    else:
        return None
    if not (_plain_int(message["id"]) and _plain_int(message["host_id"])):
        return None
    if not isinstance(message["time"], (int, float)):
        return None
    w = codec_frame(TAG_SB_QUERY)
    w.u8(0 if kind == "knn" else 1)
    w.i64(message["id"])
    w.i64(message["host_id"])
    w.f64(message["time"])
    if kind == "knn":
        if not _plain_int(message["k"]):
            return None
        w.i64(message["k"])
    else:
        w.f64(message["window_area"])
        w.f64(float(offset[0]))
        w.f64(float(offset[1]))
    return w.getvalue()


def _try_encode_answer(message: dict[str, Any]) -> bytes | None:
    if message.keys() != _ANSWER_KEYS:
        return None
    poi_ids = message["poi_ids"]
    if not (
        _plain_int(message["id"])
        and _plain_int(message["host_id"])
        and _plain_int(message["tuning_packets"])
        and isinstance(message["latency_s"], (int, float))
        and isinstance(message["plan"], str)
        and isinstance(message["kind"], str)
        and isinstance(poi_ids, list)
        and all(_plain_int(p) for p in poi_ids)
    ):
        return None
    w = codec_frame(TAG_SB_ANSWER)
    w.i64(message["id"])
    w.i64_array(poi_ids)
    w.str_(message["plan"])
    w.f64(message["latency_s"])
    w.i64(message["tuning_packets"])
    w.i64(message["host_id"])
    w.str_(message["kind"])
    return w.getvalue()


def _decode_binary(payload: bytes) -> dict[str, Any]:
    tag, r = open_frame(payload)
    if tag == TAG_SB_QUERY:
        is_window = r.u8()
        if is_window not in (0, 1):
            raise CodecError(f"bad query kind flag {is_window}")
        message: dict[str, Any] = {
            "type": MSG_QUERY,
            "kind": "window" if is_window else "knn",
            "id": r.i64(),
            "host_id": r.i64(),
            "time": r.f64(),
        }
        if is_window:
            message["window_area"] = r.f64()
            message["center_offset"] = [r.f64(), r.f64()]
        else:
            message["k"] = r.i64()
        # Key order matches query_message() + the client's id tag so a
        # JSON dump of the decoded dict is byte-comparable in tests.
        order = (
            _QUERY_WINDOW_KEYS if is_window else _QUERY_KNN_KEYS
        )
        message = {
            k: message[k]
            for k in (
                "type", "kind", "host_id", "time", "k",
                "window_area", "center_offset", "id",
            )
            if k in order
        }
    elif tag == TAG_SB_ANSWER:
        message = {
            "type": MSG_ANSWER,
            "id": r.i64(),
            "poi_ids": r.i64_array().tolist(),
            "plan": r.str_(),
            "latency_s": r.f64(),
            "tuning_packets": r.i64(),
            "host_id": r.i64(),
            "kind": r.str_(),
        }
    elif tag == TAG_SB_GENERIC:
        message = read_value(r)
        if not isinstance(message, dict):
            raise CodecError(
                f"binary frame must decode to an object, got"
                f" {type(message).__name__}"
            )
    else:
        raise CodecError(f"unknown serve frame tag 0x{tag:02x}")
    r.expect_end()
    if not isinstance(message.get("type"), str):
        raise CodecError("frame payload is missing a string 'type' field")
    return message


def encode_frame(
    message: dict[str, Any],
    encoding: str = ENCODING_JSON,
    max_frame: int = MAX_FRAME,
) -> bytes:
    """One message -> length-prefixed bytes ready for a transport.

    Enforces the *decoder's* size bound on the way out: a message whose
    payload would exceed ``max_frame`` raises
    :class:`FrameTooLargeError` instead of producing a frame the peer
    is contractually required to reject.
    """
    if encoding == ENCODING_JSON:
        payload = json.dumps(message, separators=(",", ":")).encode("utf-8")
    elif encoding == ENCODING_BINARY:
        try:
            payload = _encode_binary(message)
        except CodecError as exc:
            raise FrameError(f"unencodable binary message: {exc}") from exc
    else:
        raise ServeError(f"unknown wire encoding {encoding!r}")
    if len(payload) > max_frame:
        raise FrameTooLargeError(
            f"frame of {len(payload)} bytes exceeds MAX_FRAME ({max_frame})"
        )
    return HEADER.pack(len(payload)) + payload


def decode_payload(
    payload: bytes, encoding: str = ENCODING_JSON
) -> dict[str, Any]:
    """Frame payload -> message dict; the ``type`` must be a string."""
    if encoding == ENCODING_BINARY:
        try:
            return _decode_binary(payload)
        except CodecError as exc:
            raise FrameError(f"malformed binary frame: {exc}") from exc
    if encoding != ENCODING_JSON:
        raise ServeError(f"unknown wire encoding {encoding!r}")
    try:
        message = json.loads(payload)
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise FrameError(f"frame payload is not valid JSON: {exc}") from exc
    if not isinstance(message, dict):
        raise FrameError(
            f"frame payload must be a JSON object, got {type(message).__name__}"
        )
    if not isinstance(message.get("type"), str):
        raise FrameError("frame payload is missing a string 'type' field")
    return message


async def read_frame(
    reader: asyncio.StreamReader,
    max_frame: int = MAX_FRAME,
    encoding: str = ENCODING_JSON,
) -> dict[str, Any] | None:
    """Read one frame; ``None`` on a clean EOF at a frame boundary.

    Anything else that cuts the stream short — a truncated length
    prefix, a length past ``max_frame``, a disconnect mid-payload —
    raises :class:`FrameError`.
    """
    try:
        header = await reader.readexactly(HEADER.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise FrameError(
            f"truncated length prefix ({len(exc.partial)} of {HEADER.size}"
            " bytes)"
        ) from exc
    (length,) = HEADER.unpack(header)
    if length == 0:
        raise FrameError("zero-length frame")
    if length > max_frame:
        raise FrameError(
            f"declared frame of {length} bytes exceeds limit ({max_frame})"
        )
    try:
        payload = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise FrameError(
            f"disconnect mid-frame ({len(exc.partial)} of {length} bytes)"
        ) from exc
    return decode_payload(payload, encoding)


# ----------------------------------------------------------------------
# Server-side reply constructors
# ----------------------------------------------------------------------
def answer_message(
    request_id: Any,
    poi_ids: list[int],
    plan: str,
    latency_s: float,
    tuning_packets: int,
    **extra: Any,
) -> dict[str, Any]:
    message: dict[str, Any] = {
        "type": MSG_ANSWER,
        "id": request_id,
        "poi_ids": poi_ids,
        "plan": plan,
        "latency_s": latency_s,
        "tuning_packets": tuning_packets,
    }
    message.update(extra)
    return message


def error_message(
    error: str, request_id: Any = None, code: str = "bad-request"
) -> dict[str, Any]:
    message: dict[str, Any] = {"type": MSG_ERROR, "error": error, "code": code}
    if request_id is not None:
        message["id"] = request_id
    return message


def shed_message(
    request_id: Any, reason: str, queue_depth: int
) -> dict[str, Any]:
    return {
        "type": MSG_SHED,
        "id": request_id,
        "reason": reason,
        "queue_depth": queue_depth,
    }
