"""Shared domain objects.

A :class:`POI` (point of interest) is the unit of data everywhere in
the system: the server database stores POIs, the broadcast channel
carries them, mobile hosts cache them, and queries return them.  The
paper represents a POI by its identifier and position (footnote 1:
"we use the object identifier to represent its position coordinates").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .geometry import Point

DEFAULT_CATEGORY = "gas_station"


@dataclass(frozen=True, slots=True)
class POI:
    """An immutable point of interest."""

    poi_id: int
    location: Point
    category: str = DEFAULT_CATEGORY

    def __reduce__(self):
        # Constructor-args pickling: skips the generic frozen-dataclass
        # ``fields()``/``_dataclass_setstate`` machinery, which
        # dominated profiled cross-shard pipe traffic.
        return (POI, (self.poi_id, self.location, self.category))

    @property
    def x(self) -> float:
        return self.location.x

    @property
    def y(self) -> float:
        return self.location.y

    def distance_to(self, p: Point) -> float:
        """Euclidean distance from this POI to ``p``."""
        return self.location.distance_to(p)


@dataclass(frozen=True, slots=True)
class QueryResultEntry:
    """One ranked answer of a kNN query: a POI and its distance."""

    poi: POI
    distance: float

    def __lt__(self, other: "QueryResultEntry") -> bool:
        return self.distance < other.distance
