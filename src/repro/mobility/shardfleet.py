"""Shard-local fleet state as structure-of-arrays.

A spatial shard owns a contiguous *subset* of the fleet: its own hosts
plus a halo of hosts owned by neighbouring shards.  The coordinator
broadcasts one position/heading snapshot per refresh epoch; this class
holds that snapshot in parallel arrays (the same layout
:class:`~repro.mobility.WaypointFleet` uses for the whole fleet) keyed
by *global* host id, together with the last observed cache content
generation per host — the stamp the halo-exchange protocol uses to
decide which share payloads actually need to cross a boundary.

Rows are sorted by ascending global id.  That ordering is load-bearing:
the shard-local :class:`~repro.p2p.PeerNetwork` built over these arrays
then enumerates disc neighbours in exactly the order the full-fleet
grid would (cell-scan order, ascending id within a cell), which the
sharded simulator's bit-identity contract requires.
"""

from __future__ import annotations

import numpy as np

from ..errors import MobilityError
from ..geometry import Point


class ShardFleetSoA:
    """One shard's per-epoch fleet snapshot (owned + halo hosts)."""

    __slots__ = (
        "ids",
        "xs",
        "ys",
        "hx",
        "hy",
        "owned_mask",
        "generations",
        "_id_to_local",
    )

    def __init__(
        self,
        ids: np.ndarray,
        xs: np.ndarray,
        ys: np.ndarray,
        hx: np.ndarray,
        hy: np.ndarray,
        owned_mask: np.ndarray,
    ):
        ids = np.asarray(ids, dtype=np.int64)
        arrays = [np.asarray(a, dtype=np.float64) for a in (xs, ys, hx, hy)]
        owned_mask = np.asarray(owned_mask, dtype=bool)
        for a in (*arrays, owned_mask):
            if a.shape != ids.shape or a.ndim != 1:
                raise MobilityError("shard fleet arrays must be parallel 1-D")
        if ids.size > 1 and not bool(np.all(np.diff(ids) > 0)):
            raise MobilityError("shard fleet ids must be strictly ascending")
        self.ids = ids
        self.xs, self.ys, self.hx, self.hy = arrays
        self.owned_mask = owned_mask
        # Last cache content generation observed per host: the owner
        # shard stamps its hosts after every mutation, halo rows are
        # stamped from incoming share payloads.  -1 = never observed.
        self.generations = np.full(ids.shape, -1, dtype=np.int64)
        self._id_to_local = {
            int(gid): local for local, gid in enumerate(ids.tolist())
        }

    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        return int(self.ids.size)

    @property
    def owned_ids(self) -> np.ndarray:
        return self.ids[self.owned_mask]

    @property
    def halo_ids(self) -> np.ndarray:
        return self.ids[~self.owned_mask]

    def __contains__(self, gid: int) -> bool:
        return int(gid) in self._id_to_local

    def local_of(self, gid: int) -> int:
        """Local row index of a global host id."""
        try:
            return self._id_to_local[int(gid)]
        except KeyError:
            raise MobilityError(f"host {gid} not in this shard's snapshot")

    def owns(self, gid: int) -> bool:
        return bool(self.owned_mask[self.local_of(gid)])

    def position_of(self, gid: int) -> Point:
        local = self.local_of(gid)
        return Point(float(self.xs[local]), float(self.ys[local]))

    def heading_of(self, gid: int) -> tuple[float, float]:
        local = self.local_of(gid)
        return (float(self.hx[local]), float(self.hy[local]))

    def generation_of(self, gid: int) -> int:
        return int(self.generations[self.local_of(gid)])

    def record_generation(self, gid: int, generation: int) -> None:
        self.generations[self.local_of(gid)] = generation

    def carry_generations_from(self, previous: "ShardFleetSoA") -> None:
        """Copy forward the stamps of hosts that survive an epoch change."""
        prev_map = previous._id_to_local
        prev_gen = previous.generations
        gens = self.generations
        for local, gid in enumerate(self.ids.tolist()):
            prev_local = prev_map.get(gid)
            if prev_local is not None:
                gens[local] = prev_gen[prev_local]
