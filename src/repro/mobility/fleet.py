"""Vectorised random-waypoint mobility for tens of thousands of hosts.

The experiment harness simulates up to ~10^5 mobile hosts; stepping
each one in Python is hopeless, so the fleet keeps every host's
current leg in numpy arrays and advances all of them with array
operations.  Positions are exact (analytic interpolation along the
leg), not integrated.
"""

from __future__ import annotations

import numpy as np

from ..errors import MobilityError
from ..geometry import Point, Rect


class WaypointFleet:
    """``n`` hosts moving by random waypoint inside ``bounds``."""

    def __init__(
        self,
        n: int,
        bounds: Rect,
        rng: np.random.Generator,
        speed_range: tuple[float, float] = (5.0, 15.0),
        pause_range: tuple[float, float] = (0.0, 30.0),
    ):
        if n < 0:
            raise MobilityError(f"fleet size must be non-negative, got {n}")
        if bounds.is_degenerate():
            raise MobilityError("mobility area must have positive area")
        if not (0 < speed_range[0] <= speed_range[1]):
            raise MobilityError(f"invalid speed range {speed_range}")
        if not (0 <= pause_range[0] <= pause_range[1]):
            raise MobilityError(f"invalid pause range {pause_range}")
        self.n = n
        self.bounds = bounds
        self.rng = rng
        self.speed_range = speed_range
        self.pause_range = pause_range

        self.ox = rng.uniform(bounds.x1, bounds.x2, n)
        self.oy = rng.uniform(bounds.y1, bounds.y2, n)
        self.dx = rng.uniform(bounds.x1, bounds.x2, n)
        self.dy = rng.uniform(bounds.y1, bounds.y2, n)
        self.depart = np.zeros(n)
        speed = rng.uniform(*speed_range, n)
        dist = np.hypot(self.dx - self.ox, self.dy - self.oy)
        self.arrive = self.depart + dist / speed
        self.next_depart = self.arrive + rng.uniform(*pause_range, n)
        self._now = 0.0

    @property
    def now(self) -> float:
        return self._now

    def advance_to(self, t: float) -> None:
        """Roll every host's leg forward so all legs are current at ``t``."""
        if t < self._now:
            raise MobilityError(f"time ran backwards: {t} < {self._now}")
        self._now = t
        if self.n == 0:
            return
        while True:
            expired = self.next_depart <= t
            if not expired.any():
                return
            idx = np.nonzero(expired)[0]
            self.ox[idx] = self.dx[idx]
            self.oy[idx] = self.dy[idx]
            self.dx[idx] = self.rng.uniform(
                self.bounds.x1, self.bounds.x2, idx.size
            )
            self.dy[idx] = self.rng.uniform(
                self.bounds.y1, self.bounds.y2, idx.size
            )
            self.depart[idx] = self.next_depart[idx]
            speed = self.rng.uniform(*self.speed_range, idx.size)
            dist = np.hypot(
                self.dx[idx] - self.ox[idx], self.dy[idx] - self.oy[idx]
            )
            self.arrive[idx] = self.depart[idx] + dist / speed
            self.next_depart[idx] = self.arrive[idx] + self.rng.uniform(
                *self.pause_range, idx.size
            )

    def positions(self, t: float | None = None) -> tuple[np.ndarray, np.ndarray]:
        """Exact x/y arrays at time ``t`` (defaults to the fleet clock)."""
        if t is None:
            t = self._now
        else:
            self.advance_to(t)
        duration = np.maximum(self.arrive - self.depart, 1e-12)
        frac = np.clip((t - self.depart) / duration, 0.0, 1.0)
        xs = self.ox + frac * (self.dx - self.ox)
        ys = self.oy + frac * (self.dy - self.oy)
        return xs, ys

    def headings(self, t: float | None = None) -> tuple[np.ndarray, np.ndarray]:
        """Unit direction arrays at ``t``; zero vectors while pausing."""
        if t is None:
            t = self._now
        else:
            self.advance_to(t)
        vx = self.dx - self.ox
        vy = self.dy - self.oy
        norm = np.hypot(vx, vy)
        norm[norm == 0.0] = 1.0
        moving = (self.depart <= t) & (t < self.arrive)
        ux = np.where(moving, vx / norm, 0.0)
        uy = np.where(moving, vy / norm, 0.0)
        return ux, uy

    def position_of(self, host: int, t: float | None = None) -> Point:
        """Convenience scalar accessor for one host."""
        if not (0 <= host < self.n):
            raise MobilityError(f"unknown host {host}")
        xs, ys = self.positions(t)
        return Point(float(xs[host]), float(ys[host]))
