"""Mobility substrate: random waypoint (scalar and vectorised) and
road-network-constrained trajectories."""

from .fleet import WaypointFleet
from .roadnet import GridRoadNetwork, RoadTrajectory
from .shardfleet import ShardFleetSoA
from .waypoint import Leg, RandomWaypoint

__all__ = [
    "GridRoadNetwork",
    "Leg",
    "RandomWaypoint",
    "RoadTrajectory",
    "ShardFleetSoA",
    "WaypointFleet",
]
