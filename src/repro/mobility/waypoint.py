"""The random waypoint mobility model (Broch et al. [3]).

A host picks a uniform destination in the service area, travels to it
in a straight line at a uniformly drawn speed, pauses, and repeats.
:class:`RandomWaypoint` is the scalar reference implementation with an
analytic ``position_at`` (no per-tick stepping); the experiment
harness uses the vectorised :class:`repro.mobility.fleet.WaypointFleet`
built on the same leg structure.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..errors import MobilityError
from ..geometry import Point, Rect


@dataclass(frozen=True, slots=True)
class Leg:
    """One straight-line trip: origin -> destination plus a pause."""

    origin: Point
    destination: Point
    depart_time: float
    arrive_time: float
    next_depart_time: float

    def position_at(self, t: float) -> Point:
        if t <= self.depart_time:
            return self.origin
        if t >= self.arrive_time:
            return self.destination
        frac = (t - self.depart_time) / (self.arrive_time - self.depart_time)
        return Point(
            self.origin.x + frac * (self.destination.x - self.origin.x),
            self.origin.y + frac * (self.destination.y - self.origin.y),
        )

    def heading_at(self, t: float) -> tuple[float, float]:
        """Unit direction of travel, or ``(0, 0)`` while paused."""
        if not (self.depart_time <= t < self.arrive_time):
            return (0.0, 0.0)
        dx = self.destination.x - self.origin.x
        dy = self.destination.y - self.origin.y
        norm = math.hypot(dx, dy)
        if norm == 0.0:
            return (0.0, 0.0)
        return (dx / norm, dy / norm)


class RandomWaypoint:
    """A single host's random-waypoint trajectory.

    Time may only move forward: ``position_at`` must be called with
    non-decreasing ``t`` (the simulator's clock is monotonic).
    """

    def __init__(
        self,
        bounds: Rect,
        rng: np.random.Generator,
        speed_range: tuple[float, float] = (5.0, 15.0),
        pause_range: tuple[float, float] = (0.0, 30.0),
        start: Point | None = None,
        start_time: float = 0.0,
    ):
        if bounds.is_degenerate():
            raise MobilityError("mobility area must have positive area")
        if not (0 < speed_range[0] <= speed_range[1]):
            raise MobilityError(f"invalid speed range {speed_range}")
        if not (0 <= pause_range[0] <= pause_range[1]):
            raise MobilityError(f"invalid pause range {pause_range}")
        self.bounds = bounds
        self.rng = rng
        self.speed_range = speed_range
        self.pause_range = pause_range
        origin = start if start is not None else self._random_point()
        self._leg = self._new_leg(origin, start_time)
        self._last_t = start_time

    def _random_point(self) -> Point:
        return Point(
            float(self.rng.uniform(self.bounds.x1, self.bounds.x2)),
            float(self.rng.uniform(self.bounds.y1, self.bounds.y2)),
        )

    def _new_leg(self, origin: Point, depart_time: float) -> Leg:
        destination = self._random_point()
        speed = float(self.rng.uniform(*self.speed_range))
        travel = origin.distance_to(destination) / speed
        arrive = depart_time + travel
        pause = float(self.rng.uniform(*self.pause_range))
        return Leg(origin, destination, depart_time, arrive, arrive + pause)

    def _advance_to(self, t: float) -> None:
        if t < self._last_t:
            raise MobilityError(
                f"time ran backwards: {t} < {self._last_t}"
            )
        self._last_t = t
        while t >= self._leg.next_depart_time:
            self._leg = self._new_leg(
                self._leg.destination, self._leg.next_depart_time
            )

    def position_at(self, t: float) -> Point:
        """Host position at time ``t`` (monotone ``t`` required)."""
        self._advance_to(t)
        return self._leg.position_at(t)

    def heading_at(self, t: float) -> tuple[float, float]:
        """Unit travel direction at ``t`` (``(0,0)`` while pausing)."""
        self._advance_to(t)
        return self._leg.heading_at(t)

    @property
    def current_leg(self) -> Leg:
        return self._leg
