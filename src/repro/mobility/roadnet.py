"""A synthetic road network and path-constrained trajectories.

The paper maps its random-waypoint trajectories onto an underlying
road network of Southern California.  We substitute a perturbed grid
network (a reasonable stand-in for urban street grids): nodes sit on a
jittered lattice, edges connect lattice neighbours, and a host travels
along shortest paths between randomly chosen nodes.
"""

from __future__ import annotations

import math
from typing import Sequence

import networkx as nx
import numpy as np

from ..errors import MobilityError
from ..geometry import Point, Rect


class GridRoadNetwork:
    """A jittered-lattice road graph inside ``bounds``."""

    def __init__(
        self,
        bounds: Rect,
        spacing: float,
        rng: np.random.Generator,
        jitter: float = 0.2,
    ):
        if spacing <= 0:
            raise MobilityError(f"spacing must be positive, got {spacing}")
        if not (0 <= jitter < 0.5):
            raise MobilityError("jitter must be in [0, 0.5)")
        if bounds.width < spacing or bounds.height < spacing:
            raise MobilityError("bounds too small for the requested spacing")
        self.bounds = bounds
        cols = int(bounds.width / spacing) + 1
        rows = int(bounds.height / spacing) + 1
        self.graph = nx.Graph()
        self._positions: dict[tuple[int, int], Point] = {}
        for i in range(cols):
            for j in range(rows):
                x = bounds.x1 + i * spacing + float(
                    rng.uniform(-jitter, jitter) * spacing
                )
                y = bounds.y1 + j * spacing + float(
                    rng.uniform(-jitter, jitter) * spacing
                )
                x = min(max(x, bounds.x1), bounds.x2)
                y = min(max(y, bounds.y1), bounds.y2)
                self._positions[(i, j)] = Point(x, y)
                self.graph.add_node((i, j))
        for i in range(cols):
            for j in range(rows):
                for ni, nj in ((i + 1, j), (i, j + 1)):
                    if (ni, nj) in self._positions:
                        length = self._positions[(i, j)].distance_to(
                            self._positions[(ni, nj)]
                        )
                        self.graph.add_edge((i, j), (ni, nj), weight=length)
        self._node_list = list(self.graph.nodes)

    @property
    def node_count(self) -> int:
        return len(self._node_list)

    def position_of(self, node: tuple[int, int]) -> Point:
        if node not in self._positions:
            raise MobilityError(f"unknown road node {node}")
        return self._positions[node]

    def random_node(self, rng: np.random.Generator) -> tuple[int, int]:
        return self._node_list[int(rng.integers(len(self._node_list)))]

    def nearest_node(self, p: Point) -> tuple[int, int]:
        """The road node closest to an arbitrary point (linear scan)."""
        return min(
            self._node_list,
            key=lambda node: self._positions[node].squared_distance_to(p),
        )

    def shortest_path(
        self, a: tuple[int, int], b: tuple[int, int]
    ) -> list[Point]:
        """The polyline of the weighted shortest path from ``a`` to ``b``."""
        nodes = nx.shortest_path(self.graph, a, b, weight="weight")
        return [self._positions[n] for n in nodes]

    def path_length(self, polyline: Sequence[Point]) -> float:
        return sum(
            polyline[i].distance_to(polyline[i + 1])
            for i in range(len(polyline) - 1)
        )


class RoadTrajectory:
    """Random-waypoint movement constrained to a road network.

    The host repeatedly picks a random road node, drives the shortest
    path to it at a uniformly drawn speed, pauses, and repeats — the
    paper's "trajectories mapped to an underlying road network".
    Time must be queried monotonically.
    """

    def __init__(
        self,
        network: GridRoadNetwork,
        rng: np.random.Generator,
        speed_range: tuple[float, float] = (5.0, 15.0),
        pause_range: tuple[float, float] = (0.0, 30.0),
        start_node: tuple[int, int] | None = None,
        start_time: float = 0.0,
    ):
        if not (0 < speed_range[0] <= speed_range[1]):
            raise MobilityError(f"invalid speed range {speed_range}")
        if not (0 <= pause_range[0] <= pause_range[1]):
            raise MobilityError(f"invalid pause range {pause_range}")
        self.network = network
        self.rng = rng
        self.speed_range = speed_range
        self.pause_range = pause_range
        self._node = (
            start_node if start_node is not None else network.random_node(rng)
        )
        self._last_t = start_time
        self._begin_trip(start_time)

    def _begin_trip(self, depart_time: float) -> None:
        destination = self.network.random_node(self.rng)
        while destination == self._node and self.network.node_count > 1:
            destination = self.network.random_node(self.rng)
        self._polyline = self.network.shortest_path(self._node, destination)
        self._cum: list[float] = [0.0]
        for i in range(len(self._polyline) - 1):
            self._cum.append(
                self._cum[-1]
                + self._polyline[i].distance_to(self._polyline[i + 1])
            )
        self._speed = float(self.rng.uniform(*self.speed_range))
        self._depart = depart_time
        self._arrive = depart_time + self._cum[-1] / self._speed
        self._next_depart = self._arrive + float(
            self.rng.uniform(*self.pause_range)
        )
        self._dest_node = destination

    def _advance_to(self, t: float) -> None:
        if t < self._last_t:
            raise MobilityError(f"time ran backwards: {t} < {self._last_t}")
        self._last_t = t
        while t >= self._next_depart:
            self._node = self._dest_node
            self._begin_trip(self._next_depart)

    def position_at(self, t: float) -> Point:
        """Exact position along the current path at time ``t``."""
        self._advance_to(t)
        if t <= self._depart:
            return self._polyline[0]
        if t >= self._arrive:
            return self._polyline[-1]
        travelled = (t - self._depart) * self._speed
        # Locate the polyline segment containing the travelled distance.
        for i in range(len(self._cum) - 1):
            if travelled <= self._cum[i + 1]:
                seg_len = self._cum[i + 1] - self._cum[i]
                frac = 0.0 if seg_len == 0 else (travelled - self._cum[i]) / seg_len
                a, b = self._polyline[i], self._polyline[i + 1]
                return Point(a.x + frac * (b.x - a.x), a.y + frac * (b.y - a.y))
        return self._polyline[-1]

    def heading_at(self, t: float) -> tuple[float, float]:
        """Unit travel direction at ``t``; zero while pausing."""
        self._advance_to(t)
        if not (self._depart <= t < self._arrive):
            return (0.0, 0.0)
        travelled = (t - self._depart) * self._speed
        for i in range(len(self._cum) - 1):
            if travelled <= self._cum[i + 1]:
                a, b = self._polyline[i], self._polyline[i + 1]
                dx, dy = b.x - a.x, b.y - a.y
                norm = math.hypot(dx, dy)
                if norm == 0:
                    return (0.0, 0.0)
                return (dx / norm, dy / norm)
        return (0.0, 0.0)

    @property
    def current_path(self) -> list[Point]:
        return list(self._polyline)
