"""The point-to-point on-demand access model (the paper's baseline)."""

from .server import OnDemandAnswer, OnDemandServer, erlang_b, mmc_wait_time

__all__ = ["OnDemandAnswer", "OnDemandServer", "erlang_b", "mmc_wait_time"]
