"""The point-to-point on-demand access model (the paper's baseline)."""

from .server import OnDemandAnswer, OnDemandServer, mmc_wait_time

__all__ = ["OnDemandAnswer", "OnDemandServer", "mmc_wait_time"]
