"""The on-demand (point-to-point) access model — the paper's foil.

Section 1: "a user establishes a point-to-point communication with the
server so that her queries can be answered on demand. However, this
approach ... may not scale to very large systems", needs a fee-based
cellular network, and reveals the user's location.

This module implements that baseline so the scalability claim can be
measured: a server with a bounded number of concurrent uplink channels
(a :class:`repro.sim.Resource`), an R-tree-backed query engine whose
service time is proportional to the nodes it touches, and a closed-form
M/M/c waiting-time model for quick analysis.  The broadcast model's
latency is load-independent; the on-demand model's latency explodes
past saturation — reproduced by ``benchmarks/bench_ondemand_baseline``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import ExperimentError
from ..geometry import Point, Rect
from ..index import RTree
from ..model import POI, QueryResultEntry
from ..sim import Environment, Resource


@dataclass(frozen=True, slots=True)
class OnDemandAnswer:
    """One served request: the answer and its timings."""

    results: tuple[QueryResultEntry, ...]
    queued_for: float
    service_time: float

    @property
    def latency(self) -> float:
        return self.queued_for + self.service_time


class OnDemandServer:
    """A central spatial server with ``channels`` concurrent uplinks.

    ``per_node_service_time`` prices one R-tree node access (I/O +
    transmission); a request holds an uplink for its whole service.
    """

    def __init__(
        self,
        pois,
        channels: int = 4,
        per_node_service_time: float = 0.01,
        fixed_overhead: float = 0.05,
    ):
        if channels < 1:
            raise ExperimentError("channels must be >= 1")
        if per_node_service_time <= 0 or fixed_overhead < 0:
            raise ExperimentError("invalid service-time parameters")
        self.tree = RTree.from_pois(pois)
        self.channels = channels
        self.per_node_service_time = per_node_service_time
        self.fixed_overhead = fixed_overhead
        self.served = 0

    def service_time_for_knn(self, query: Point, k: int) -> float:
        """Deterministic service time from the counted node accesses."""
        _, accesses = self.tree.count_node_accesses(
            lambda view: view.nearest(query, k)
        )
        return self.fixed_overhead + accesses * self.per_node_service_time

    def request_process(
        self,
        env: Environment,
        uplinks: Resource,
        query: Point,
        k: int,
        sink: list[OnDemandAnswer],
    ):
        """DES process for one client request (queue, serve, release)."""
        arrived = env.now
        yield uplinks.request()
        queued_for = env.now - arrived
        service = self.service_time_for_knn(query, k)
        yield env.timeout(service)
        uplinks.release()
        self.served += 1
        results = tuple(self.tree.nearest(query, k))
        sink.append(
            OnDemandAnswer(
                results=results, queued_for=queued_for, service_time=service
            )
        )


def erlang_b(offered_load: float, servers: int) -> float:
    """Erlang B blocking probability via the stable recurrence.

    ``B(0) = 1``, ``B(n) = a·B(n-1) / (n + a·B(n-1))``.  Every term
    stays in ``[0, 1]``, so unlike the textbook ``a^c / c!`` ratio it
    neither overflows nor loses precision for large ``c``.

    Degenerate inputs (negative or non-finite load, ``servers < 1``)
    raise :class:`~repro.errors.ExperimentError`: the serving layer's
    admission control feeds *measured* rates in here, and a silent
    nonsense probability would turn into a silent nonsense shed
    decision.
    """
    if not math.isfinite(offered_load) or offered_load < 0:
        raise ExperimentError(
            f"offered load must be finite and >= 0, got {offered_load}"
        )
    if servers < 1:
        raise ExperimentError(f"servers must be >= 1, got {servers}")
    blocking = 1.0
    for n in range(1, servers + 1):
        blocking = offered_load * blocking / (n + offered_load * blocking)
    return blocking


def mmc_wait_time(arrival_rate: float, service_rate: float, servers: int) -> float:
    """Mean M/M/c waiting time (Erlang C), in the same time unit.

    Raises :class:`~repro.errors.ExperimentError` for degenerate
    inputs (negative/non-finite rates, ``service_rate <= 0``,
    ``servers < 1``) **and** for unstable queues (offered load
    ``a = λ/μ >= c``): there the stationary wait does not exist, and a
    caller measuring live rates — the serving layer's admission
    control — must treat the condition explicitly (shed) rather than
    propagate a meaningless number.  The waiting probability is
    derived from :func:`erlang_b`: computing the ``a^c / c!`` terms
    directly overflows ``float`` near ``c ≈ 170`` even at moderate
    loads.
    """
    if not math.isfinite(arrival_rate) or arrival_rate < 0:
        raise ExperimentError(
            f"arrival rate must be finite and >= 0, got {arrival_rate}"
        )
    if not math.isfinite(service_rate) or service_rate <= 0:
        raise ExperimentError(
            f"service rate must be finite and > 0, got {service_rate}"
        )
    if servers < 1:
        raise ExperimentError(f"servers must be >= 1, got {servers}")
    if arrival_rate == 0:
        return 0.0
    a = arrival_rate / service_rate  # offered load (Erlangs)
    rho = a / servers
    if rho >= 1.0:
        raise ExperimentError(
            f"unstable M/M/c queue: offered load {a:.3g} Erlangs"
            f" >= {servers} server(s) (rho = {rho:.3g})"
        )
    # Erlang C from Erlang B: C = c·B / (c − a·(1 − B)).
    blocking = erlang_b(a, servers)
    p_wait = servers * blocking / (servers - a * (1.0 - blocking))
    return p_wait / (servers * service_rate - arrival_rate)
