"""Axis-aligned rectangles (minimum bounding rectangles, MBRs).

Rectangles are closed regions ``[x1, x2] x [y1, y2]``.  They are the
currency of the whole system: verified regions (Section 3.2 of the
paper), R-tree node boxes, query windows, and Hilbert-cell extents are
all :class:`Rect` instances.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

from ..errors import GeometryError
from .point import Point
from .segment import Segment


class Rect:
    """A closed axis-aligned rectangle with ``x1 <= x2`` and ``y1 <= y2``.

    A hand-written slots class, immutable by convention: rectangles
    are the currency of the entire system (tens of thousands are
    constructed per simulated workload — region shrinks, windows,
    index boxes), and the frozen-dataclass ``__init__`` paid four
    ``object.__setattr__`` calls plus a ``__post_init__`` dispatch per
    instance.  Equality, hashing, and repr keep the old dataclass
    contract over ``(x1, y1, x2, y2)``.
    """

    __slots__ = ("x1", "y1", "x2", "y2")

    def __init__(self, x1: float, y1: float, x2: float, y2: float) -> None:
        if not (x1 <= x2 and y1 <= y2):
            raise GeometryError(
                f"malformed rectangle: ({x1}, {y1}, {x2}, {y2})"
            )
        self.x1 = x1
        self.y1 = y1
        self.x2 = x2
        self.y2 = y2

    def __repr__(self) -> str:
        return (
            f"Rect(x1={self.x1!r}, y1={self.y1!r},"
            f" x2={self.x2!r}, y2={self.y2!r})"
        )

    def __eq__(self, other: object) -> bool:
        if other.__class__ is Rect:
            return (
                self.x1 == other.x1
                and self.y1 == other.y1
                and self.x2 == other.x2
                and self.y2 == other.y2
            )
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self.x1, self.y1, self.x2, self.y2))

    def __reduce__(self):
        # Constructor-args pickling: four floats instead of the
        # generic slots-state protocol (one dict + setstate per rect).
        return (Rect, (self.x1, self.y1, self.x2, self.y2))

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_points(cls, points: Iterable[Point]) -> "Rect":
        """The MBR of a non-empty collection of points."""
        pts = list(points)
        if not pts:
            raise GeometryError("MBR of an empty point collection")
        xs = [p.x for p in pts]
        ys = [p.y for p in pts]
        return cls(min(xs), min(ys), max(xs), max(ys))

    @classmethod
    def from_center(cls, center: Point, width: float, height: float) -> "Rect":
        """A rectangle of the given dimensions centred on ``center``."""
        if width < 0 or height < 0:
            raise GeometryError("negative rectangle dimensions")
        return cls(
            center.x - width / 2.0,
            center.y - height / 2.0,
            center.x + width / 2.0,
            center.y + height / 2.0,
        )

    @classmethod
    def bounding(cls, rects: Sequence["Rect"]) -> "Rect":
        """The MBR of a non-empty collection of rectangles."""
        if not rects:
            raise GeometryError("MBR of an empty rectangle collection")
        return cls(
            min(r.x1 for r in rects),
            min(r.y1 for r in rects),
            max(r.x2 for r in rects),
            max(r.y2 for r in rects),
        )

    # ------------------------------------------------------------------
    # Basic measures
    # ------------------------------------------------------------------
    @property
    def width(self) -> float:
        return self.x2 - self.x1

    @property
    def height(self) -> float:
        return self.y2 - self.y1

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def perimeter(self) -> float:
        return 2.0 * (self.width + self.height)

    @property
    def center(self) -> Point:
        return Point((self.x1 + self.x2) / 2.0, (self.y1 + self.y2) / 2.0)

    def is_degenerate(self) -> bool:
        """True when the rectangle has zero area (a segment or a point)."""
        return self.width == 0.0 or self.height == 0.0

    # ------------------------------------------------------------------
    # Predicates
    # ------------------------------------------------------------------
    def contains_point(self, p: Point) -> bool:
        """Closed containment: boundary points are inside."""
        return self.x1 <= p.x <= self.x2 and self.y1 <= p.y <= self.y2

    def contains_rect(self, other: "Rect") -> bool:
        """True when ``other`` lies entirely inside this rectangle."""
        return (
            self.x1 <= other.x1
            and self.y1 <= other.y1
            and other.x2 <= self.x2
            and other.y2 <= self.y2
        )

    def intersects(self, other: "Rect") -> bool:
        """Closed intersection test (shared boundary counts)."""
        return (
            self.x1 <= other.x2
            and other.x1 <= self.x2
            and self.y1 <= other.y2
            and other.y1 <= self.y2
        )

    def overlaps_interior(self, other: "Rect") -> bool:
        """True when the open interiors intersect (positive-area overlap)."""
        return (
            self.x1 < other.x2
            and other.x1 < self.x2
            and self.y1 < other.y2
            and other.y1 < self.y2
        )

    # ------------------------------------------------------------------
    # Combinators
    # ------------------------------------------------------------------
    def intersection(self, other: "Rect") -> "Rect | None":
        """The overlap rectangle, or ``None`` when disjoint."""
        x1 = max(self.x1, other.x1)
        y1 = max(self.y1, other.y1)
        x2 = min(self.x2, other.x2)
        y2 = min(self.y2, other.y2)
        if x1 > x2 or y1 > y2:
            return None
        return Rect(x1, y1, x2, y2)

    def union_mbr(self, other: "Rect") -> "Rect":
        """The MBR enclosing both rectangles."""
        return Rect(
            min(self.x1, other.x1),
            min(self.y1, other.y1),
            max(self.x2, other.x2),
            max(self.y2, other.y2),
        )

    def expanded(self, margin: float) -> "Rect":
        """A rectangle grown (or shrunk, for negative margin) on all sides."""
        if 2 * margin < -min(self.width, self.height):
            raise GeometryError("shrinking margin exceeds rectangle size")
        return Rect(
            self.x1 - margin, self.y1 - margin, self.x2 + margin, self.y2 + margin
        )

    def clipped_to(self, bounds: "Rect") -> "Rect | None":
        """Alias of :meth:`intersection`, reads better when clipping."""
        return self.intersection(bounds)

    # ------------------------------------------------------------------
    # Geometry queries
    # ------------------------------------------------------------------
    def corners(self) -> tuple[Point, Point, Point, Point]:
        """Corners in counter-clockwise order starting at ``(x1, y1)``."""
        return (
            Point(self.x1, self.y1),
            Point(self.x2, self.y1),
            Point(self.x2, self.y2),
            Point(self.x1, self.y2),
        )

    def edges(self) -> tuple[Segment, Segment, Segment, Segment]:
        """The four boundary segments in counter-clockwise order."""
        c = self.corners()
        return (
            Segment(c[0], c[1]),
            Segment(c[1], c[2]),
            Segment(c[2], c[3]),
            Segment(c[3], c[0]),
        )

    def distance_to_point(self, p: Point) -> float:
        """Distance from ``p`` to the rectangle (0 when ``p`` is inside)."""
        dx = max(self.x1 - p.x, 0.0, p.x - self.x2)
        dy = max(self.y1 - p.y, 0.0, p.y - self.y2)
        return math.hypot(dx, dy)

    def max_distance_to_point(self, p: Point) -> float:
        """Distance from ``p`` to the farthest point of the rectangle."""
        dx = max(abs(p.x - self.x1), abs(p.x - self.x2))
        dy = max(abs(p.y - self.y1), abs(p.y - self.y2))
        return math.hypot(dx, dy)

    def boundary_distance_to_point(self, p: Point) -> float:
        """Distance from ``p`` to the rectangle *boundary* (positive inside too)."""
        return min(edge.distance_to_point(p) for edge in self.edges())

    def sample_point(self, u: float, v: float) -> Point:
        """The point at fractional position ``(u, v)`` in ``[0, 1]^2``."""
        return Point(self.x1 + u * self.width, self.y1 + v * self.height)

    def as_tuple(self) -> tuple[float, float, float, float]:
        """The rectangle as a plain ``(x1, y1, x2, y2)`` tuple."""
        return (self.x1, self.y1, self.x2, self.y2)
