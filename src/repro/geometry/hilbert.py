"""Hilbert space-filling curve encoding.

The broadcast server (Zheng et al. [17], Section 2.1 of the paper)
orders POIs on the channel by their Hilbert value because the curve
preserves locality: cells that are close in the plane tend to be close
on the curve, so a spatial query touches a short broadcast segment.

The functions here implement the classic iterative transform between a
cell index ``(x, y)`` on a ``2^order x 2^order`` grid and the distance
``d`` along the curve, plus helpers to map continuous coordinates into
cells of an arbitrary bounding rectangle.
"""

from __future__ import annotations

import numpy as np

from ..errors import GeometryError
from .point import Point
from .rect import Rect


def _rotate(side: int, x: int, y: int, rx: int, ry: int) -> tuple[int, int]:
    """Rotate/flip a quadrant so the curve orientation is preserved."""
    if ry == 0:
        if rx == 1:
            x = side - 1 - x
            y = side - 1 - y
        x, y = y, x
    return x, y


def hilbert_xy_to_d(order: int, x: int, y: int) -> int:
    """Distance along the Hilbert curve of cell ``(x, y)``."""
    side = 1 << order
    if not (0 <= x < side and 0 <= y < side):
        raise GeometryError(f"cell ({x}, {y}) outside a {side}x{side} Hilbert grid")
    d = 0
    s = side // 2
    while s > 0:
        rx = 1 if (x & s) > 0 else 0
        ry = 1 if (y & s) > 0 else 0
        d += s * s * ((3 * rx) ^ ry)
        x, y = _rotate(s, x, y, rx, ry)
        s //= 2
    return d


def hilbert_d_to_xy(order: int, d: int) -> tuple[int, int]:
    """Cell ``(x, y)`` at distance ``d`` along the Hilbert curve."""
    side = 1 << order
    if not (0 <= d < side * side):
        raise GeometryError(f"distance {d} outside a {side}x{side} Hilbert grid")
    x = y = 0
    t = d
    s = 1
    while s < side:
        rx = 1 & (t // 2)
        ry = 1 & (t ^ rx)
        x, y = _rotate(s, x, y, rx, ry)
        x += s * rx
        y += s * ry
        t //= 4
        s *= 2
    return x, y


def hilbert_xy_to_d_batch(
    order: int, xs: np.ndarray, ys: np.ndarray
) -> np.ndarray:
    """Vectorised :func:`hilbert_xy_to_d` over int arrays.

    Runs the same iterative transform with one numpy operation per
    curve level instead of one Python loop per cell — exact integer
    arithmetic, bit-identical to the scalar function.
    """
    side = 1 << order
    x = np.asarray(xs, dtype=np.int64).copy()
    y = np.asarray(ys, dtype=np.int64).copy()
    if x.shape != y.shape:
        raise GeometryError("xs and ys must have matching shapes")
    if x.size and (
        x.min() < 0 or x.max() >= side or y.min() < 0 or y.max() >= side
    ):
        raise GeometryError(f"cell outside a {side}x{side} Hilbert grid")
    d = np.zeros(x.shape, dtype=np.int64)
    s = side // 2
    while s > 0:
        rx = ((x & s) > 0).astype(np.int64)
        ry = ((y & s) > 0).astype(np.int64)
        d += s * s * ((3 * rx) ^ ry)
        # _rotate, vectorised: flip within the quadrant, then swap axes.
        swap = ry == 0
        flip = swap & (rx == 1)
        x = np.where(flip, s - 1 - x, x)
        y = np.where(flip, s - 1 - y, y)
        x, y = np.where(swap, y, x), np.where(swap, x, y)
        s //= 2
    return d


def hilbert_d_to_xy_batch(
    order: int, ds: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorised :func:`hilbert_d_to_xy` over an int array."""
    side = 1 << order
    t = np.asarray(ds, dtype=np.int64).copy()
    if t.size and (t.min() < 0 or t.max() >= side * side):
        raise GeometryError(f"distance outside a {side}x{side} Hilbert grid")
    x = np.zeros(t.shape, dtype=np.int64)
    y = np.zeros(t.shape, dtype=np.int64)
    s = 1
    while s < side:
        rx = 1 & (t // 2)
        ry = 1 & (t ^ rx)
        swap = ry == 0
        flip = swap & (rx == 1)
        x = np.where(flip, s - 1 - x, x)
        y = np.where(flip, s - 1 - y, y)
        x, y = np.where(swap, y, x), np.where(swap, x, y)
        x += s * rx
        y += s * ry
        t //= 4
        s *= 2
    return x, y


class HilbertGrid:
    """A Hilbert curve laid over an arbitrary bounding rectangle.

    Continuous coordinates are binned into ``2^order x 2^order`` cells;
    each cell has a curve index in ``[0, 4^order)``.
    """

    __slots__ = ("order", "bounds", "side", "_cell_w", "_cell_h")

    def __init__(self, order: int, bounds: Rect) -> None:
        if order < 1:
            raise GeometryError("Hilbert order must be >= 1")
        if bounds.is_degenerate():
            raise GeometryError("Hilbert grid over a degenerate rectangle")
        self.order = order
        self.bounds = bounds
        self.side = 1 << order
        self._cell_w = bounds.width / self.side
        self._cell_h = bounds.height / self.side

    @property
    def cell_count(self) -> int:
        return self.side * self.side

    @property
    def cell_diagonal(self) -> float:
        """Length of a cell diagonal (uncertainty of index-only positions)."""
        return (self._cell_w**2 + self._cell_h**2) ** 0.5

    def cell_of_point(self, p: Point) -> tuple[int, int]:
        """The grid cell containing ``p`` (clamped to the grid edge)."""
        cx = int((p.x - self.bounds.x1) / self._cell_w)
        cy = int((p.y - self.bounds.y1) / self._cell_h)
        cx = max(0, min(self.side - 1, cx))
        cy = max(0, min(self.side - 1, cy))
        return cx, cy

    def value_of_point(self, p: Point) -> int:
        """Hilbert value of the cell containing ``p``."""
        cx, cy = self.cell_of_point(p)
        return hilbert_xy_to_d(self.order, cx, cy)

    def values_of_points(self, xs: np.ndarray, ys: np.ndarray) -> np.ndarray:
        """Batch :meth:`value_of_point` over coordinate arrays."""
        cx = ((np.asarray(xs, dtype=np.float64) - self.bounds.x1) / self._cell_w).astype(np.int64)
        cy = ((np.asarray(ys, dtype=np.float64) - self.bounds.y1) / self._cell_h).astype(np.int64)
        np.clip(cx, 0, self.side - 1, out=cx)
        np.clip(cy, 0, self.side - 1, out=cy)
        return hilbert_xy_to_d_batch(self.order, cx, cy)

    def cell_rect(self, cx: int, cy: int) -> Rect:
        """The spatial extent of cell ``(cx, cy)``."""
        x1 = self.bounds.x1 + cx * self._cell_w
        y1 = self.bounds.y1 + cy * self._cell_h
        return Rect(x1, y1, x1 + self._cell_w, y1 + self._cell_h)

    def rect_of_value(self, d: int) -> Rect:
        """The spatial extent of the cell with Hilbert value ``d``."""
        cx, cy = hilbert_d_to_xy(self.order, d)
        return self.cell_rect(cx, cy)

    def rects_of_values(
        self, ds: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Batch :meth:`rect_of_value`: ``(x1, y1, x2, y2)`` arrays.

        One vectorised curve decode for the whole array, then the same
        float expressions as :meth:`cell_rect` applied elementwise —
        every coordinate is bit-identical to the scalar path.
        """
        cx, cy = hilbert_d_to_xy_batch(self.order, np.asarray(ds, np.int64))
        x1 = self.bounds.x1 + cx * self._cell_w
        y1 = self.bounds.y1 + cy * self._cell_h
        return x1, y1, x1 + self._cell_w, y1 + self._cell_h

    def centers_of_values(
        self, ds: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Batch :meth:`center_of_value`: ``(x, y)`` centre arrays."""
        x1, y1, x2, y2 = self.rects_of_values(ds)
        return (x1 + x2) / 2.0, (y1 + y2) / 2.0

    def center_of_value(self, d: int) -> Point:
        """Centre point of the cell with Hilbert value ``d``."""
        return self.rect_of_value(d).center

    def aligned_blocks(
        self, lo: int, hi: int, min_cells: int = 1
    ) -> list[Rect]:
        """Square extents of the maximal 4^m-aligned runs inside ``[lo, hi]``.

        A run of Hilbert values aligned at a multiple of ``4^m`` and of
        length ``4^m`` occupies exactly one ``2^m x 2^m`` square of
        cells, so each returned rectangle is a region whose cells all
        lie inside the value range — the sound cacheable regions of a
        contiguous broadcast-segment download.  Runs smaller than
        ``min_cells`` are dropped.
        """
        if not (0 <= lo <= hi < self.cell_count):
            raise GeometryError(f"invalid Hilbert range [{lo}, {hi}]")
        blocks: list[Rect] = []
        cur = lo
        while cur <= hi:
            size = 1
            while cur % (size * 4) == 0 and cur + size * 4 - 1 <= hi:
                size *= 4
            if size >= min_cells:
                side = int(round(size**0.5))
                cx, cy = hilbert_d_to_xy(self.order, cur)
                bx = (cx // side) * side
                by = (cy // side) * side
                low = self.cell_rect(bx, by)
                high = self.cell_rect(bx + side - 1, by + side - 1)
                blocks.append(low.union_mbr(high))
            cur += size
        return blocks

    def values_intersecting(self, window: Rect) -> list[int]:
        """Hilbert values of all cells intersecting ``window``, sorted.

        This is the candidate set of the on-air window algorithm: the
        first and last values bound the broadcast segment that must be
        listened to.
        """
        clipped = window.intersection(self.bounds)
        if clipped is None:
            return []
        cx1, cy1 = self.cell_of_point(Point(clipped.x1, clipped.y1))
        cx2, cy2 = self.cell_of_point(Point(clipped.x2, clipped.y2))
        gx, gy = np.meshgrid(
            np.arange(cx1, cx2 + 1, dtype=np.int64),
            np.arange(cy1, cy2 + 1, dtype=np.int64),
        )
        values = hilbert_xy_to_d_batch(self.order, gx.ravel(), gy.ravel())
        values.sort()
        return values.tolist()
