"""Persistent slab-decomposition union with O(affected-slabs) updates.

:class:`~repro.geometry.region.RectUnion` rebuilds its slab structure
from the full rectangle set on every construction — fine for one-shot
merges, quadratic pain for the cache hot path where one rectangle
arrives (or one cached POI leaves) at a time.  :class:`SlabUnion`
maintains the *same* canonical slab structure — sorted x cuts, merged
closed y-interval tuples per slab — but mutates it in place:

* :meth:`insert_rect` splits at most two slabs and re-merges only the
  slabs the rectangle spans;
* :meth:`subtract_rect` / :meth:`subtract_point_cut` subtract a
  rectangle (or a tiny square around an evicted point) from the
  spanned slabs only;
* every read — area, boundary, containment, window coverage/
  subtraction, disc interactions — is the module-level kernel shared
  with ``RectUnion`` (see :mod:`~repro.geometry.region`), evaluated on
  the maintained structure and memoised per mutation generation.

**Canonical-form contract.**  For an *insert-only* history the
maintained structure is bit-identical to the eager
``RectUnion(rects)`` of the same member set: the x cuts are exactly
the member edges, and merged closed intervals have a unique maximal
representation, so every derived float (area sums, boundary segment
coordinates, clamped-projection distances, ``w'`` remainders) matches
the eager rebuild exactly — not just within tolerance.  Subtraction
leaves canonical-form territory (the eager reference has no
subtraction), so after the first subtract the union is only
*set*-equivalent to any rebuilt reference and :attr:`rects` becomes
unavailable.

Slab interval tuples are immutable and structurally shared:
:meth:`clone` is O(slabs) and copies no interval data, which is what
makes the MVR memo's copy-on-write delta merges cheap.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Iterable, Sequence

import numpy as np

from ..errors import GeometryError
from .circle import Circle, circle_rect_intersection_area
from .point import Point
from .rect import Rect
from .region import (
    Interval,
    boundary_min_distance,
    build_slabs,
    intervals_cover,
    intervals_difference,
    merge_intervals,
    rects_contain_points,
    slabs_area,
    slabs_boundary_coord_arrays,
    slabs_boundary_segments,
    slabs_contains_point,
    slabs_covers_rect,
    slabs_disjoint_rects,
    slabs_intersects_rect,
    slabs_subtract_from_rect,
)
from .segment import Segment

# Default half-width of a point cut: matches the cache eviction margin
# so a cut point ends up strictly outside the closed remaining region.
POINT_CUT_MARGIN = 1e-9


class SlabUnion:
    """A mutable union of axis-aligned rectangles over a live slab
    decomposition.

    ``generation`` counts mutations; every memoised derived value is
    stamped with the generation it was computed at, so reads after a
    burst of mutations recompute exactly once.
    """

    __slots__ = (
        "_xs",
        "_slabs",
        "_members",
        "generation",
        "_frozen",
        "_memo_gen",
        "_memo",
    )

    def __init__(self) -> None:
        self._xs: list[float] = []
        self._slabs: list[tuple[Interval, ...]] = []
        # Member rectangles, tracked only while the history is
        # insert-only (None after the first subtraction).
        self._members: list[Rect] | None = []
        self.generation = 0
        self._frozen = False
        self._memo_gen = -1
        self._memo: dict = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_rects(cls, rects: Iterable[Rect] = ()) -> "SlabUnion":
        """Bulk-build from a rectangle set (canonical, like RectUnion)."""
        union = cls()
        members = [r for r in rects if r.x2 != r.x1 and r.y2 != r.y1]
        union._members = members
        union._xs, union._slabs = build_slabs(members)
        return union

    @classmethod
    def empty(cls) -> "SlabUnion":
        return cls()

    def clone(self) -> "SlabUnion":
        """An independent, unfrozen copy sharing all interval tuples."""
        twin = SlabUnion()
        twin._xs = list(self._xs)
        twin._slabs = list(self._slabs)
        twin._members = None if self._members is None else list(self._members)
        twin.generation = self.generation
        twin._memo_gen = self._memo_gen
        # Memoised values are immutable (floats, Rects, ndarray tuples
        # never written in place), so the clone can share them.
        twin._memo = dict(self._memo)
        return twin

    def freeze(self) -> "SlabUnion":
        """Forbid further mutation (for memo-shared instances)."""
        self._frozen = True
        return self

    def __reduce__(self):
        # Pickle as one flat codec frame (repro.codec.types): the slab
        # structure, generation, frozen flag, and members round-trip
        # bit-exactly; memoised derived values are dropped (they are
        # pure functions of the structure and rebuild identically).
        from ..codec import decode, encode

        return (decode, (encode(self),))

    def union_with(self, rects: Iterable[Rect]) -> "SlabUnion":
        """A new union that also covers ``rects`` (self unchanged)."""
        twin = self.clone()
        for rect in rects:
            twin.insert_rect(rect)
        return twin

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def _touch(self) -> None:
        if self._frozen:
            raise GeometryError("mutating a frozen SlabUnion")
        self.generation += 1

    def _ensure_cut(self, x: float) -> None:
        """Make ``x`` a slab boundary, splitting the containing slab."""
        xs = self._xs
        i = bisect_left(xs, x)
        if i < len(xs) and xs[i] == x:
            return
        if i == 0:
            xs.insert(0, x)
            self._slabs.insert(0, ())
        elif i == len(xs):
            xs.append(x)
            self._slabs.append(())
        else:
            xs.insert(i, x)
            self._slabs.insert(i, self._slabs[i - 1])

    def insert_rect(self, rect: Rect) -> "SlabUnion":
        """Add a rectangle; O(slabs spanned + log slabs).

        Degenerate rectangles are dropped, matching ``RectUnion``.
        Returns ``self`` for chaining.
        """
        if rect.x2 == rect.x1 or rect.y2 == rect.y1:
            return self
        self._touch()
        if self._members is not None:
            self._members.append(rect)
        if not self._xs:
            self._xs = [rect.x1, rect.x2]
            self._slabs = [((rect.y1, rect.y2),)]
            return self
        self._ensure_cut(rect.x1)
        self._ensure_cut(rect.x2)
        lo = bisect_left(self._xs, rect.x1)
        hi = bisect_left(self._xs, rect.x2)
        span = (rect.y1, rect.y2)
        slabs = self._slabs
        for j in range(lo, hi):
            intervals = slabs[j]
            if intervals and intervals_cover(intervals, rect.y1, rect.y2):
                continue
            slabs[j] = tuple(merge_intervals(list(intervals) + [span]))
        return self

    def subtract_rect(self, rect: Rect) -> "SlabUnion":
        """Remove a rectangle's area; O(slabs spanned + log slabs).

        Measure-theoretic subtraction on closed intervals: the cut
        leaves closed boundaries at the rectangle's edges, so a point
        strictly inside ``rect`` is strictly outside the remaining
        region.  Member-rectangle tracking (:attr:`rects`) ends at the
        first cut that actually removes area.

        A cut that removes nothing — outside the x range, or missing
        every y interval of the slabs it spans — is a structural
        no-op: no generation bump, no cuts inserted, no interval
        tuples replaced, and :attr:`rects` stays available.  Within an
        effective cut, slabs whose intervals the cut band misses keep
        their (structurally shared) tuples, and any inserted cut left
        with identical intervals on both sides is merged away so a
        perforation never strands redundant slabs.
        """
        if rect.x2 == rect.x1 or rect.y2 == rect.y1:
            return self
        if self._frozen:
            raise GeometryError("mutating a frozen SlabUnion")
        xs = self._xs
        if not xs:
            return self
        lo_x = max(rect.x1, xs[0])
        hi_x = min(rect.x2, xs[-1])
        if lo_x >= hi_x:
            return self
        cut_lo, cut_hi = rect.y1, rect.y2
        slabs = self._slabs
        # Pre-cut affected test over the slabs spanning (lo_x, hi_x):
        # the cut removes area iff some interval meets the open band.
        first = bisect_right(xs, lo_x) - 1
        last = min(bisect_left(xs, hi_x), len(slabs))
        affected = False
        for j in range(max(first, 0), last):
            for a, b in slabs[j]:
                if a < cut_hi and b > cut_lo:
                    affected = True
                    break
            if affected:
                break
        if not affected:
            return self
        self._touch()
        self._members = None
        self._ensure_cut(lo_x)
        self._ensure_cut(hi_x)
        lo = bisect_left(self._xs, lo_x)
        hi = bisect_left(self._xs, hi_x)
        cut = [(cut_lo, cut_hi)]
        for j in range(lo, hi):
            intervals = slabs[j]
            for a, b in intervals:
                if a < cut_hi and b > cut_lo:
                    slabs[j] = tuple(intervals_difference(intervals, cut))
                    break
        self._merge_equal_slabs(lo, hi)
        self._trim()
        return self

    def _merge_equal_slabs(self, lo: int, hi: int) -> None:
        """Drop cuts with identical merged intervals on both sides,
        scanning the boundaries a subtraction over slabs ``[lo, hi)``
        could have affected.

        Only the subtract path calls this: the canonical insert-only
        structure keeps cuts at every *member* edge even when the
        neighbouring slabs coincide, so merging there would break the
        bit-identity contract with the eager build.  After the first
        subtraction the structure is set-semantic only, and a
        redundant cut is pure overhead (it inflates ``slab_count``,
        which the cache mirror uses as its compaction trigger).
        """
        xs, slabs = self._xs, self._slabs
        j = min(hi, len(slabs) - 1)
        floor = max(1, lo)
        while j >= floor:
            if slabs[j - 1] == slabs[j]:
                del slabs[j]
                del xs[j]
            j -= 1

    def subtract_point_cut(
        self, p: Point, margin: float = POINT_CUT_MARGIN
    ) -> "SlabUnion":
        """Remove a tiny closed square around ``p`` (eviction repair).

        After the cut, ``p`` is strictly outside the region and every
        remaining point is at least ``margin`` away from ``p`` in one
        axis — the same exclusion guarantee the cache's rectangle
        shrinking provides, while forfeiting far less verified area.
        """
        return self.subtract_rect(
            Rect(p.x - margin, p.y - margin, p.x + margin, p.y + margin)
        )

    def _trim(self) -> None:
        """Drop empty edge slabs (their cuts carry no region)."""
        xs, slabs = self._xs, self._slabs
        while slabs and not slabs[-1]:
            slabs.pop()
            xs.pop()
        while slabs and not slabs[0]:
            slabs.pop(0)
            xs.pop(0)
        if not slabs:
            xs.clear()

    # ------------------------------------------------------------------
    # Memoised derived values
    # ------------------------------------------------------------------
    def _memo_get(self, key: str, compute):
        if self._memo_gen != self.generation:
            self._memo.clear()
            self._memo_gen = self.generation
        try:
            return self._memo[key]
        except KeyError:
            value = self._memo[key] = compute()
            return value

    # ------------------------------------------------------------------
    # Structure accessors (read-only)
    # ------------------------------------------------------------------
    @property
    def xs(self) -> Sequence[float]:
        """The sorted slab boundaries (do not mutate)."""
        return self._xs

    @property
    def slab_intervals(self) -> Sequence[tuple[Interval, ...]]:
        """Merged y intervals per slab (do not mutate)."""
        return self._slabs

    @property
    def slab_count(self) -> int:
        return len(self._slabs)

    @property
    def rects(self) -> tuple[Rect, ...]:
        """The inserted rectangles, insert-only histories only."""
        if self._members is None:
            raise GeometryError(
                "member rectangles are unavailable after subtraction"
            )
        return tuple(self._members)

    # ------------------------------------------------------------------
    # Measures and predicates (same contract as RectUnion)
    # ------------------------------------------------------------------
    @property
    def area(self) -> float:
        return self._memo_get(
            "area", lambda: slabs_area(self._xs, self._slabs)
        )

    @property
    def is_empty(self) -> bool:
        return self.area == 0.0

    def mbr(self) -> Rect:
        return self._memo_get("mbr", self._compute_mbr)

    def _compute_mbr(self) -> Rect:
        if self._members is not None:
            if not self._members:
                raise GeometryError("MBR of an empty region")
            return Rect.bounding(self._members)
        live = [iv for iv in self._slabs if iv]
        if not live:
            raise GeometryError("MBR of an empty region")
        # _trim keeps the edge slabs non-empty, so xs spans the region.
        return Rect(
            self._xs[0],
            min(iv[0][0] for iv in live),
            self._xs[-1],
            max(iv[-1][1] for iv in live),
        )

    def contains_point(self, p: Point) -> bool:
        return slabs_contains_point(self._xs, self._slabs, p.x, p.y)

    def _cover_coord_arrays(self) -> tuple[np.ndarray, ...]:
        def compute():
            if self._members is not None:
                rects: Sequence[Rect] = self._members
            else:
                rects = slabs_disjoint_rects(self._xs, self._slabs)
            return (
                np.array([r.x1 for r in rects]),
                np.array([r.y1 for r in rects]),
                np.array([r.x2 for r in rects]),
                np.array([r.y2 for r in rects]),
            )

        return self._memo_get("cover_arrays", compute)

    def contains_points(self, pxs: np.ndarray, pys: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`contains_point` over coordinate arrays.

        Broadcasts against the member rectangles while the history is
        insert-only (the exact arrays RectUnion uses), else against
        the disjoint slab pieces; both closed covers equal the region,
        so the mask matches the scalar predicate on every point.
        """
        pxs = np.asarray(pxs, dtype=np.float64)
        pys = np.asarray(pys, dtype=np.float64)
        if not self._slabs:
            return np.zeros(pxs.shape, dtype=bool)
        return rects_contain_points(self._cover_coord_arrays(), pxs, pys)

    def covers_rect(self, window: Rect) -> bool:
        return slabs_covers_rect(self._xs, self._slabs, window)

    def intersects_rect(self, window: Rect) -> bool:
        return slabs_intersects_rect(self._xs, self._slabs, window)

    # ------------------------------------------------------------------
    # Decompositions
    # ------------------------------------------------------------------
    def disjoint_rects(self) -> list[Rect]:
        return slabs_disjoint_rects(self._xs, self._slabs)

    def subtract_from_rect(self, window: Rect) -> list[Rect]:
        return slabs_subtract_from_rect(self._xs, self._slabs, window)

    # ------------------------------------------------------------------
    # Boundary
    # ------------------------------------------------------------------
    def boundary_segments(self) -> list[Segment]:
        return self._memo_get(
            "boundary_segments",
            lambda: slabs_boundary_segments(self._xs, self._slabs),
        )

    def _boundary_coord_arrays(self) -> tuple[np.ndarray, ...]:
        return self._memo_get(
            "boundary_arrays",
            lambda: slabs_boundary_coord_arrays(self._xs, self._slabs),
        )

    def distance_to_boundary(self, p: Point) -> float:
        if self.is_empty:
            raise GeometryError("distance to the boundary of an empty region")
        return boundary_min_distance(self._boundary_coord_arrays(), p.x, p.y)

    def boundary_length(self) -> float:
        return self._memo_get(
            "boundary_length",
            lambda: sum(seg.length for seg in self.boundary_segments()),
        )

    # ------------------------------------------------------------------
    # Disc interactions (Lemma 3.2 support)
    # ------------------------------------------------------------------
    def disc_intersection_area(self, circle: Circle) -> float:
        total = 0.0
        for piece in self.disjoint_rects():
            if circle.intersects_rect(piece):
                total += circle_rect_intersection_area(circle, piece)
        return min(total, circle.area)

    def disc_uncovered_area(self, circle: Circle) -> float:
        return max(0.0, circle.area - self.disc_intersection_area(circle))

    def contains_circle(self, circle: Circle) -> bool:
        if self.is_empty:
            return False
        if not self.contains_point(circle.center):
            return False
        return circle.radius <= self.distance_to_boundary(circle.center)
