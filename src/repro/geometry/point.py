"""2-D points and distance helpers.

All geometry in this package works in a planar Euclidean coordinate
system.  The experiment harness uses miles, but nothing in this module
assumes a unit.
"""

from __future__ import annotations

import math
from typing import Iterable, Iterator


class Point:
    """An immutable (by convention) 2-D point.

    A hand-written slots class: points are constructed in every hot
    loop of the simulator, and the frozen-dataclass ``__init__`` paid
    two ``object.__setattr__`` calls per instance.  Equality, hashing,
    and repr keep the old dataclass contract over ``(x, y)``.
    """

    __slots__ = ("x", "y")

    def __init__(self, x: float, y: float) -> None:
        self.x = x
        self.y = y

    def __repr__(self) -> str:
        return f"Point(x={self.x!r}, y={self.y!r})"

    def __eq__(self, other: object) -> bool:
        if other.__class__ is Point:
            return self.x == other.x and self.y == other.y
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self.x, self.y))

    def __reduce__(self):
        # Constructor-args pickling: two floats instead of the generic
        # slots-state protocol.
        return (Point, (self.x, self.y))

    def distance_to(self, other: "Point") -> float:
        """Euclidean distance ``||self, other||`` (Table 1 notation)."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def squared_distance_to(self, other: "Point") -> float:
        """Squared Euclidean distance (avoids the sqrt in comparisons)."""
        dx = self.x - other.x
        dy = self.y - other.y
        return dx * dx + dy * dy

    def translated(self, dx: float, dy: float) -> "Point":
        """A new point offset by ``(dx, dy)``."""
        return Point(self.x + dx, self.y + dy)

    def as_tuple(self) -> tuple[float, float]:
        """The point as a plain ``(x, y)`` tuple."""
        return (self.x, self.y)

    def __iter__(self) -> Iterator[float]:
        yield self.x
        yield self.y


def centroid(points: Iterable[Point]) -> Point:
    """Arithmetic mean of a non-empty collection of points."""
    xs = 0.0
    ys = 0.0
    n = 0
    for p in points:
        xs += p.x
        ys += p.y
        n += 1
    if n == 0:
        raise ValueError("centroid of an empty point collection")
    return Point(xs / n, ys / n)
