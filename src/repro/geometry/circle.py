"""Circles (discs) and exact circle-rectangle intersection areas.

The correctness-probability model of the paper (Lemma 3.2) needs the
area of an *unverified region*: the part of the disc
``C(q, ||q, o||)`` not covered by the merged verified region.  Because
the merged verified region decomposes into disjoint axis-aligned
rectangles, an exact closed-form area for ``disc ∩ rectangle`` is all
that is required; :func:`circle_rect_intersection_area` provides it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import GeometryError
from .point import Point
from .rect import Rect


@dataclass(frozen=True, slots=True)
class Circle:
    """A closed disc with ``radius >= 0``."""

    center: Point
    radius: float

    def __post_init__(self) -> None:
        if self.radius < 0:
            raise GeometryError(f"negative circle radius: {self.radius}")

    @property
    def area(self) -> float:
        return math.pi * self.radius * self.radius

    def contains_point(self, p: Point) -> bool:
        """Closed containment: boundary points are inside."""
        return self.center.squared_distance_to(p) <= self.radius * self.radius

    def mbr(self) -> Rect:
        """The minimum bounding rectangle of the disc."""
        return Rect(
            self.center.x - self.radius,
            self.center.y - self.radius,
            self.center.x + self.radius,
            self.center.y + self.radius,
        )

    def inscribed_rect(self) -> Rect:
        """The largest axis-aligned square inscribed in the disc."""
        half = self.radius / math.sqrt(2.0)
        return Rect(
            self.center.x - half,
            self.center.y - half,
            self.center.x + half,
            self.center.y + half,
        )

    def intersects_rect(self, rect: Rect) -> bool:
        """True when the disc and the rectangle share at least one point."""
        return rect.distance_to_point(self.center) <= self.radius

    def contains_rect(self, rect: Rect) -> bool:
        """True when the whole rectangle lies inside the disc."""
        return rect.max_distance_to_point(self.center) <= self.radius


def _antiderivative(x: float, r: float) -> float:
    """Antiderivative of ``sqrt(r^2 - x^2)`` for ``|x| <= r``."""
    x = max(-r, min(r, x))
    return 0.5 * (x * math.sqrt(max(0.0, r * r - x * x)) + r * r * math.asin(x / r))


def _chord_x(y: float, r: float) -> float | None:
    """Positive x where the circle of radius ``r`` crosses height ``y``."""
    if abs(y) >= r:
        return None
    return math.sqrt(r * r - y * y)


def circle_rect_intersection_area(circle: Circle, rect: Rect) -> float:
    """Exact area of ``disc ∩ rectangle``.

    Works by translating the rectangle into the circle frame and
    integrating the vertical extent
    ``max(0, min(y2, f(x)) - max(y1, -f(x)))`` with ``f(x) = sqrt(r^2 - x^2)``
    piecewise: the integration domain is split at every x where the
    circle crosses ``y1`` or ``y2``, so within each piece the upper and
    lower envelopes are a single analytic branch.
    """
    r = circle.radius
    if r == 0.0:
        return 0.0
    x1 = rect.x1 - circle.center.x
    x2 = rect.x2 - circle.center.x
    y1 = rect.y1 - circle.center.y
    y2 = rect.y2 - circle.center.y

    a = max(x1, -r)
    b = min(x2, r)
    if a >= b or y1 >= r or y2 <= -r:
        return 0.0

    breakpoints = {a, b}
    for y in (y1, y2):
        cx = _chord_x(y, r)
        if cx is not None:
            for candidate in (-cx, cx):
                if a < candidate < b:
                    breakpoints.add(candidate)
    xs = sorted(breakpoints)

    total = 0.0
    for lo, hi in zip(xs, xs[1:]):
        mid = (lo + hi) / 2.0
        f_mid = math.sqrt(max(0.0, r * r - mid * mid))
        # Non-strict comparisons: when the circle is internally tangent
        # to an edge (f_mid == y2 or -f_mid == y1 at the sampled
        # midpoint) the circular arc is the binding envelope over the
        # whole piece — the strict form billed the rect strip instead,
        # over-reporting the area beyond min(circle, rect).
        top_is_circle = f_mid <= y2
        bottom_is_circle = -f_mid >= y1
        top_mid = f_mid if top_is_circle else y2
        bottom_mid = -f_mid if bottom_is_circle else y1
        if top_mid <= bottom_mid:
            continue
        piece = 0.0
        if top_is_circle:
            piece += _antiderivative(hi, r) - _antiderivative(lo, r)
        else:
            piece += y2 * (hi - lo)
        if bottom_is_circle:
            piece += _antiderivative(hi, r) - _antiderivative(lo, r)
        else:
            piece -= y1 * (hi - lo)
        total += piece
    return max(0.0, total)
