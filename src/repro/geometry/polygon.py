"""Simple polygons (no self-intersection assumed).

The merged verified region itself is handled exactly by
:class:`repro.geometry.region.RectUnion`; this module provides the
generic polygon operations (shoelace area, ray-casting containment)
used by the analysis module and by tests that cross-check the
rectilinear machinery against an independent formulation.
"""

from __future__ import annotations

from typing import Sequence

from ..errors import GeometryError
from .point import Point
from .rect import Rect
from .segment import Segment


class Polygon:
    """An immutable simple polygon defined by its vertex ring."""

    __slots__ = ("_vertices",)

    def __init__(self, vertices: Sequence[Point]) -> None:
        if len(vertices) < 3:
            raise GeometryError("a polygon needs at least three vertices")
        ring = list(vertices)
        if ring[0] == ring[-1]:
            ring = ring[:-1]
        if len(ring) < 3:
            raise GeometryError("a polygon needs at least three distinct vertices")
        self._vertices = tuple(ring)

    @classmethod
    def from_rect(cls, rect: Rect) -> "Polygon":
        return cls(rect.corners())

    @property
    def vertices(self) -> tuple[Point, ...]:
        return self._vertices

    def edges(self) -> list[Segment]:
        verts = self._vertices
        return [
            Segment(verts[i], verts[(i + 1) % len(verts)])
            for i in range(len(verts))
        ]

    @property
    def signed_area(self) -> float:
        """Shoelace signed area (positive for counter-clockwise rings)."""
        total = 0.0
        verts = self._vertices
        for i, a in enumerate(verts):
            b = verts[(i + 1) % len(verts)]
            total += a.x * b.y - b.x * a.y
        return total / 2.0

    @property
    def area(self) -> float:
        return abs(self.signed_area)

    @property
    def perimeter(self) -> float:
        return sum(edge.length for edge in self.edges())

    def bbox(self) -> Rect:
        return Rect.from_points(self._vertices)

    def contains_point(self, p: Point) -> bool:
        """Ray-casting containment; boundary points count as inside."""
        verts = self._vertices
        n = len(verts)
        inside = False
        for i in range(n):
            a = verts[i]
            b = verts[(i + 1) % n]
            if Segment(a, b).distance_to_point(p) == 0.0:
                return True
            if (a.y > p.y) != (b.y > p.y):
                x_cross = a.x + (p.y - a.y) * (b.x - a.x) / (b.y - a.y)
                if p.x < x_cross:
                    inside = not inside
        return inside

    def distance_to_boundary(self, p: Point) -> float:
        return min(edge.distance_to_point(p) for edge in self.edges())
