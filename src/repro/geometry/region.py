"""Rectilinear regions: exact unions of axis-aligned rectangles.

Every verified region in the system is an MBR, so the *merged verified
region* (``MVR`` in the paper, built with a MapOverlay in the authors'
implementation) is a union of rectangles.  :class:`RectUnion` computes
that union exactly with a slab decomposition:

* the x axis is cut at every rectangle edge, producing vertical slabs;
* within each slab the covered y extent is a set of merged intervals;
* the union's area, containment tests, boundary (including the edges of
  interior holes — the paper's "unverified regions inside the merged
  verified region"), window coverage, and window subtraction all follow
  from the slab structure with no floating-point construction error
  beyond the input coordinates themselves.

The slab structure itself — a sorted boundary list ``xs`` plus one
merged interval tuple per slab — is shared with the *incremental*
:class:`~repro.geometry.slabunion.SlabUnion`: every read-side
operation lives here as a module-level function over ``(xs, slabs)``,
so the eager union (rebuilt per construction) and the persistent union
(mutated in place) are pinned to one set of kernels and cannot drift.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from typing import Iterable, Sequence

import numpy as np

from ..errors import GeometryError
from .circle import Circle, circle_rect_intersection_area
from .point import Point
from .rect import Rect
from .segment import Segment

Interval = tuple[float, float]
SlabList = Sequence[Sequence[Interval]]


# ----------------------------------------------------------------------
# Interval algebra (closed intervals on a line)
# ----------------------------------------------------------------------
def merge_intervals(intervals: Iterable[Interval]) -> list[Interval]:
    """Union of closed intervals, returned sorted and disjoint.

    Touching intervals (shared endpoint) are merged; empty and inverted
    inputs are dropped.
    """
    cleaned = sorted([(lo, hi) for lo, hi in intervals if hi > lo])
    merged: list[Interval] = []
    for lo, hi in cleaned:
        if merged and lo <= merged[-1][1]:
            if hi > merged[-1][1]:
                merged[-1] = (merged[-1][0], hi)
        else:
            merged.append((lo, hi))
    return merged


def intervals_cover(intervals: Sequence[Interval], lo: float, hi: float) -> bool:
    """True when ``[lo, hi]`` lies inside the (merged, sorted) intervals.

    Disjoint sorted intervals admit at most one candidate: the last
    interval starting at or before ``lo``, found by bisection.
    """
    if hi < lo:
        raise GeometryError("inverted interval in coverage test")
    idx = bisect_right(intervals, (lo, math.inf)) - 1
    if idx < 0:
        return False
    a, b = intervals[idx]
    return a <= lo and hi <= b


def intervals_complement_within(
    intervals: Sequence[Interval], lo: float, hi: float
) -> list[Interval]:
    """Gaps of the (merged, sorted) intervals inside the window ``[lo, hi]``."""
    gaps: list[Interval] = []
    cursor = lo
    for a, b in intervals:
        if b <= cursor:
            continue
        if a >= hi:
            break
        if a > cursor:
            gaps.append((cursor, min(a, hi)))
        cursor = max(cursor, b)
        if cursor >= hi:
            break
    if cursor < hi:
        gaps.append((cursor, hi))
    return [(a, b) for a, b in gaps if b > a]


def intervals_difference(
    minuend: Sequence[Interval], subtrahend: Sequence[Interval]
) -> list[Interval]:
    """Measure-theoretic difference ``minuend - subtrahend`` (both merged)."""
    result: list[Interval] = []
    for lo, hi in minuend:
        result.extend(intervals_complement_within(subtrahend, lo, hi))
    return merge_intervals(result)


def intervals_total_length(intervals: Sequence[Interval]) -> float:
    """Total length of disjoint intervals."""
    return sum(hi - lo for lo, hi in intervals)


# ----------------------------------------------------------------------
# Slab-structure kernels, shared by RectUnion and SlabUnion
# ----------------------------------------------------------------------
# A slab structure is a pair ``(xs, slabs)``: ``xs`` is the sorted list
# of x cuts and ``slabs[i]`` holds the merged y intervals covering the
# slab ``xs[i]..xs[i+1]`` as an immutable tuple (immutability is what
# lets SlabUnion clones share unchanged slabs).  The canonical
# structure for a rectangle set — cuts at exactly the member edges,
# intervals in merged canonical form — is *unique*, so an incremental
# build and an eager rebuild of the same set agree bit-for-bit.


def build_slabs(
    rects: Sequence[Rect],
) -> tuple[list[float], list[tuple[Interval, ...]]]:
    """Bulk-build the canonical slab structure of a rectangle set.

    Degenerate rectangles must already be dropped by the caller.
    """
    xs = sorted({x for r in rects for x in (r.x1, r.x2)})
    slabs: list[tuple[Interval, ...]] = []
    if len(rects) * (len(xs) - 1) >= 256:
        # Large union (the merged-MVR case): one broadcast
        # containment test replaces the per-slab Python filter
        # over all rects; ``nonzero`` preserves rect order, so
        # each slab sees the same intervals as before.
        rx1 = np.array([r.x1 for r in rects])
        rx2 = np.array([r.x2 for r in rects])
        y_pairs = [(r.y1, r.y2) for r in rects]
        xa = np.array(xs[:-1])
        xb = np.array(xs[1:])
        cover = (rx1 <= xa[:, None]) & (rx2 >= xb[:, None])
        for row in cover:
            covering = [y_pairs[j] for j in np.nonzero(row)[0].tolist()]
            slabs.append(tuple(merge_intervals(covering)))
    else:
        for xa, xb in zip(xs, xs[1:]):
            covering = [
                (r.y1, r.y2) for r in rects if r.x1 <= xa and r.x2 >= xb
            ]
            slabs.append(tuple(merge_intervals(covering)))
    return xs, slabs


def slabs_area(xs: Sequence[float], slabs: SlabList) -> float:
    """Exact union area: per-slab width times merged interval length."""
    return sum(
        (xb - xa) * intervals_total_length(iv)
        for (xa, xb), iv in zip(zip(xs, xs[1:]), slabs)
    )


def iter_slabs(xs: Sequence[float], slabs: SlabList):
    return zip(zip(xs, xs[1:]), slabs)


def slabs_contains_point(
    xs: Sequence[float], slabs: SlabList, px: float, py: float
) -> bool:
    """Closed containment (points on the boundary are inside)."""
    if not xs or px < xs[0] or px > xs[-1]:
        return False
    idx = bisect_right(xs, px) - 1
    candidates = []
    if 0 <= idx < len(slabs):
        candidates.append(idx)
    if px == xs[idx] and idx - 1 >= 0:
        candidates.append(idx - 1)
    for i in candidates:
        for y1, y2 in slabs[i]:
            if y1 <= py <= y2:
                return True
    return False


def rects_contain_points(
    coord_arrays: tuple[np.ndarray, ...], pxs: np.ndarray, pys: np.ndarray
) -> np.ndarray:
    """Broadcast closed containment of points in a set of rectangles.

    Works for any rectangle decomposition whose closed union equals the
    region (member rectangles or disjoint slab pieces) — exact
    agreement with the scalar slab predicate on every point,
    boundaries included.
    """
    rx1, ry1, rx2, ry2 = coord_arrays
    if rx1.size * pxs.size <= 200_000:
        return (
            (pxs >= rx1[:, None])
            & (pxs <= rx2[:, None])
            & (pys >= ry1[:, None])
            & (pys <= ry2[:, None])
        ).any(axis=0)
    out = np.zeros(pxs.shape, dtype=bool)
    for x1, y1, x2, y2 in zip(rx1, ry1, rx2, ry2):
        out |= (pxs >= x1) & (pxs <= x2) & (pys >= y1) & (pys <= y2)
    return out


def slabs_covers_rect(
    xs: Sequence[float], slabs: SlabList, window: Rect
) -> bool:
    """True when the window lies entirely inside the union.

    Degenerate windows (segments, points) are checked against the
    slab structure too — endpoint/midpoint sampling is unsound when
    the union has two or more holes along the segment.
    """
    if window.is_degenerate():
        return slabs_covers_degenerate(xs, slabs, window)
    if not xs or window.x1 < xs[0] or window.x2 > xs[-1]:
        return False
    for (xa, xb), intervals in iter_slabs(xs, slabs):
        if xb <= window.x1 or xa >= window.x2:
            continue
        if not intervals_cover(intervals, window.y1, window.y2):
            return False
    return True


def slabs_covers_degenerate(
    xs: Sequence[float], slabs: SlabList, window: Rect
) -> bool:
    """Closed coverage of a zero-area window (point or segment)."""
    if not xs:
        return False
    if window.x1 == window.x2 and window.y1 == window.y2:
        return slabs_contains_point(xs, slabs, window.x1, window.y1)
    if window.x1 == window.x2:
        # Vertical segment on x = c: both slabs touching c (two
        # when c is a slab boundary) contribute closed coverage.
        x = window.x1
        if x < xs[0] or x > xs[-1]:
            return False
        spans: list[Interval] = []
        for (xa, xb), intervals in iter_slabs(xs, slabs):
            if xa <= x <= xb:
                spans.extend(intervals)
        return intervals_cover(merge_intervals(spans), window.y1, window.y2)
    # Horizontal segment on y = c: every slab sharing positive
    # length with it must have an interval containing c (slab
    # rects are closed, so that covers the closed slab piece too).
    y = window.y1
    if window.x1 < xs[0] or window.x2 > xs[-1]:
        return False
    for (xa, xb), intervals in iter_slabs(xs, slabs):
        if xb <= window.x1 or xa >= window.x2:
            continue
        if not any(y1 <= y <= y2 for y1, y2 in intervals):
            return False
    return True


def slabs_intersects_rect(
    xs: Sequence[float], slabs: SlabList, window: Rect
) -> bool:
    """True when the window and the union share positive area."""
    for (xa, xb), intervals in iter_slabs(xs, slabs):
        if xb <= window.x1 or xa >= window.x2:
            continue
        for y1, y2 in intervals:
            if y1 < window.y2 and window.y1 < y2:
                return True
    return False


def slabs_disjoint_rects(xs: Sequence[float], slabs: SlabList) -> list[Rect]:
    """The union as a list of disjoint rectangles (slab pieces)."""
    pieces: list[Rect] = []
    for (xa, xb), intervals in iter_slabs(xs, slabs):
        for y1, y2 in intervals:
            pieces.append(Rect(xa, y1, xb, y2))
    return pieces


def slabs_subtract_from_rect(
    xs: Sequence[float], slabs: SlabList, window: Rect
) -> list[Rect]:
    """The uncovered remainder ``window - union`` as disjoint rectangles.

    This is the reduced query window ``w'`` of Section 3.4.2 (SBWQ
    broadcast-channel data filtering).
    """
    if window.is_degenerate():
        covered = slabs_covers_rect(xs, slabs, window)
        return [] if covered else [window]
    remainder: list[Rect] = []
    if not xs:
        return [window]
    left_edge = min(max(xs[0], window.x1), window.x2)
    right_edge = max(min(xs[-1], window.x2), window.x1)
    if window.x1 < left_edge:
        remainder.append(Rect(window.x1, window.y1, left_edge, window.y2))
    if right_edge < window.x2 and right_edge >= left_edge:
        remainder.append(Rect(right_edge, window.y1, window.x2, window.y2))
    if left_edge >= right_edge:
        return [r for r in remainder if not r.is_degenerate()]
    for (xa, xb), intervals in iter_slabs(xs, slabs):
        lo_x = max(xa, window.x1)
        hi_x = min(xb, window.x2)
        if lo_x >= hi_x:
            continue
        for g1, g2 in intervals_complement_within(
            intervals, window.y1, window.y2
        ):
            remainder.append(Rect(lo_x, g1, hi_x, g2))
    return [r for r in remainder if not r.is_degenerate()]


def slabs_boundary_coord_arrays(
    xs: Sequence[float], slabs: SlabList
) -> tuple[np.ndarray, ...]:
    """Boundary segments as flat coordinate arrays ``(ax, ay, dx, dy, len_sq)``.

    Built without materialising :class:`Segment` objects — this is the
    hot path behind every ``distance_to_boundary`` call.  Horizontal
    edges come directly from the slab intervals; vertical edges are the
    parts of each slab border covered on exactly one side (symmetric
    difference of the adjacent slabs' intervals, skipped outright when
    the two interval tuples are equal).  Same segment multiset, in the
    same order, as :func:`slabs_boundary_segments`.
    """
    ax: list[float] = []
    ay: list[float] = []
    bx: list[float] = []
    by: list[float] = []
    for (xa, xb), intervals in iter_slabs(xs, slabs):
        for y1, y2 in intervals:
            ax.append(xa)
            ay.append(y1)
            bx.append(xb)
            by.append(y1)
            ax.append(xa)
            ay.append(y2)
            bx.append(xb)
            by.append(y2)
    n_slabs = len(slabs)
    for i, x in enumerate(xs):
        left = slabs[i - 1] if i > 0 else ()
        right = slabs[i] if i < n_slabs else ()
        if left == right:
            continue
        exposed = intervals_difference(left, right) + intervals_difference(
            right, left
        )
        for y1, y2 in exposed:
            ax.append(x)
            ay.append(y1)
            bx.append(x)
            by.append(y2)
    axa = np.array(ax)
    aya = np.array(ay)
    dx = np.array(bx) - axa
    dy = np.array(by) - aya
    len_sq = dx * dx + dy * dy
    # Segment lengths are positive by construction, but a
    # subnormal slab width can square-underflow to 0.0; the
    # guard keeps the projection finite (any t in [0, 1] is
    # correct for a segment that short).
    return axa, aya, dx, dy, np.where(len_sq > 0.0, len_sq, 1.0)


def slabs_boundary_segments(
    xs: Sequence[float], slabs: SlabList
) -> list[Segment]:
    """All boundary segments, *including* the edges of interior holes.

    Collinear fragments are not merged — irrelevant for distance
    queries.  Cold path (reporting, tests): the distance kernels use
    :func:`slabs_boundary_coord_arrays` directly.
    """
    segments: list[Segment] = []
    for (xa, xb), intervals in iter_slabs(xs, slabs):
        for y1, y2 in intervals:
            segments.append(Segment(Point(xa, y1), Point(xb, y1)))
            segments.append(Segment(Point(xa, y2), Point(xb, y2)))
    n_slabs = len(slabs)
    for i, x in enumerate(xs):
        left = slabs[i - 1] if i > 0 else ()
        right = slabs[i] if i < n_slabs else ()
        if left == right:
            continue
        exposed = intervals_difference(left, right) + intervals_difference(
            right, left
        )
        for y1, y2 in exposed:
            segments.append(Segment(Point(x, y1), Point(x, y2)))
    return segments


def boundary_min_distance(
    arrays: tuple[np.ndarray, ...], px: float, py: float
) -> float:
    """Min distance from a point to the boundary coordinate arrays.

    Clamped projection onto every boundary segment at once; the
    segments all have positive length (slab intervals and exposed
    vertical gaps are non-degenerate by construction).
    """
    ax, ay, dx, dy, len_sq = arrays
    t = np.clip(((px - ax) * dx + (py - ay) * dy) / len_sq, 0.0, 1.0)
    return float(np.min(np.hypot(px - (ax + t * dx), py - (ay + t * dy))))


# ----------------------------------------------------------------------
# Rectangle union
# ----------------------------------------------------------------------
class RectUnion:
    """The union of a set of axis-aligned rectangles, as a closed region.

    The union is immutable once built.  Degenerate (zero-area) input
    rectangles contribute nothing and are dropped.
    """

    __slots__ = (
        "_rects",
        "_xs",
        "_slab_intervals",
        "_area",
        "_boundary",
        "_boundary_arrays",
        "_rect_arrays",
    )

    def __init__(self, rects: Iterable[Rect] = ()) -> None:
        # Inline Rect.is_degenerate: constructed per MVR merge.
        self._rects: tuple[Rect, ...] = tuple(
            [r for r in rects if r.x2 != r.x1 and r.y2 != r.y1]
        )
        xs, slabs = build_slabs(self._rects)
        self._xs: list[float] = xs
        self._slab_intervals: list[tuple[Interval, ...]] = slabs
        self._area = slabs_area(xs, slabs)
        self._boundary: list[Segment] | None = None
        self._boundary_arrays: tuple[np.ndarray, ...] | None = None
        self._rect_arrays: tuple[np.ndarray, ...] | None = None

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def empty(cls) -> "RectUnion":
        return cls(())

    def union_with(self, rects: Iterable[Rect]) -> "RectUnion":
        """A new union that also covers ``rects``."""
        return RectUnion(list(self._rects) + list(rects))

    @property
    def rects(self) -> tuple[Rect, ...]:
        """The input rectangles (overlapping, as provided)."""
        return self._rects

    # ------------------------------------------------------------------
    # Measures and predicates
    # ------------------------------------------------------------------
    @property
    def is_empty(self) -> bool:
        return self._area == 0.0

    @property
    def area(self) -> float:
        """Exact area of the union."""
        return self._area

    def mbr(self) -> Rect:
        """Bounding rectangle of the whole union."""
        if not self._rects:
            raise GeometryError("MBR of an empty region")
        return Rect.bounding(self._rects)

    def contains_point(self, p: Point) -> bool:
        """Closed containment (points on the boundary are inside)."""
        return slabs_contains_point(self._xs, self._slab_intervals, p.x, p.y)

    def _rect_coord_arrays(self) -> tuple[np.ndarray, ...]:
        if self._rect_arrays is None:
            self._rect_arrays = (
                np.array([r.x1 for r in self._rects]),
                np.array([r.y1 for r in self._rects]),
                np.array([r.x2 for r in self._rects]),
                np.array([r.y2 for r in self._rects]),
            )
        return self._rect_arrays

    def contains_points(self, pxs: np.ndarray, pys: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`contains_point` over coordinate arrays.

        The closed union equals the set-union of the closed input
        rectangles, so the batch test is one broadcast comparison
        against the rectangle coordinate arrays — exact agreement with
        the scalar slab-based predicate on every point, boundaries
        included.
        """
        pxs = np.asarray(pxs, dtype=np.float64)
        pys = np.asarray(pys, dtype=np.float64)
        if not self._rects:
            return np.zeros(pxs.shape, dtype=bool)
        return rects_contain_points(self._rect_coord_arrays(), pxs, pys)

    def covers_rect(self, window: Rect) -> bool:
        """True when the window lies entirely inside the union."""
        return slabs_covers_rect(self._xs, self._slab_intervals, window)

    def intersects_rect(self, window: Rect) -> bool:
        """True when the window and the union share positive area."""
        return slabs_intersects_rect(self._xs, self._slab_intervals, window)

    # ------------------------------------------------------------------
    # Decompositions
    # ------------------------------------------------------------------
    def disjoint_rects(self) -> list[Rect]:
        """The union as a list of disjoint rectangles (slab pieces)."""
        return slabs_disjoint_rects(self._xs, self._slab_intervals)

    def subtract_from_rect(self, window: Rect) -> list[Rect]:
        """The uncovered remainder ``window - union`` as disjoint rectangles.

        This is the reduced query window ``w'`` of Section 3.4.2 (SBWQ
        broadcast-channel data filtering).
        """
        return slabs_subtract_from_rect(self._xs, self._slab_intervals, window)

    # ------------------------------------------------------------------
    # Boundary
    # ------------------------------------------------------------------
    def boundary_segments(self) -> list[Segment]:
        """All boundary segments, *including* the edges of interior holes.

        The result is computed once and cached (the region is
        immutable).
        """
        if self._boundary is None:
            self._boundary = slabs_boundary_segments(
                self._xs, self._slab_intervals
            )
        return self._boundary

    def _boundary_coord_arrays(self) -> tuple[np.ndarray, ...]:
        if self._boundary_arrays is None:
            self._boundary_arrays = slabs_boundary_coord_arrays(
                self._xs, self._slab_intervals
            )
        return self._boundary_arrays

    def distance_to_boundary(self, p: Point) -> float:
        """Distance from ``p`` to the union's boundary (``||q, e_s||``).

        For a query point inside the region this is the radius of the
        largest disc around ``p`` contained in the region — exactly the
        verification bound of Lemma 3.1.
        """
        if self.is_empty:
            raise GeometryError("distance to the boundary of an empty region")
        return boundary_min_distance(self._boundary_coord_arrays(), p.x, p.y)

    def boundary_length(self) -> float:
        """Total length of the boundary (holes included)."""
        return sum(seg.length for seg in self.boundary_segments())

    # ------------------------------------------------------------------
    # Disc interactions (Lemma 3.2 support)
    # ------------------------------------------------------------------
    def disc_intersection_area(self, circle: Circle) -> float:
        """Exact area of ``disc ∩ union``."""
        total = 0.0
        for piece in self.disjoint_rects():
            if circle.intersects_rect(piece):
                total += circle_rect_intersection_area(circle, piece)
        return min(total, circle.area)

    def disc_uncovered_area(self, circle: Circle) -> float:
        """Exact area of ``disc - union`` — the *unverified region* size."""
        return max(0.0, circle.area - self.disc_intersection_area(circle))

    def contains_circle(self, circle: Circle) -> bool:
        """True when the whole disc lies inside the union."""
        if self.is_empty:
            return False
        if not self.contains_point(circle.center):
            return False
        return circle.radius <= self.distance_to_boundary(circle.center)
