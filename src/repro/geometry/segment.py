"""Line segments and point-to-segment distance."""

from __future__ import annotations

import math
from dataclasses import dataclass

from .point import Point


@dataclass(frozen=True, slots=True)
class Segment:
    """An immutable 2-D line segment between two endpoints."""

    a: Point
    b: Point

    @property
    def length(self) -> float:
        """Euclidean length of the segment."""
        return self.a.distance_to(self.b)

    def midpoint(self) -> Point:
        """The midpoint of the segment."""
        return Point((self.a.x + self.b.x) / 2.0, (self.a.y + self.b.y) / 2.0)

    def distance_to_point(self, p: Point) -> float:
        """Shortest Euclidean distance from ``p`` to any point on the segment.

        Uses the standard clamped projection onto the supporting line; a
        degenerate (zero-length) segment degrades to point distance.
        """
        ax, ay = self.a.x, self.a.y
        bx, by = self.b.x, self.b.y
        dx = bx - ax
        dy = by - ay
        seg_len_sq = dx * dx + dy * dy
        if seg_len_sq == 0.0:
            return p.distance_to(self.a)
        t = ((p.x - ax) * dx + (p.y - ay) * dy) / seg_len_sq
        t = max(0.0, min(1.0, t))
        cx = ax + t * dx
        cy = ay + t * dy
        return math.hypot(p.x - cx, p.y - cy)

    def is_horizontal(self) -> bool:
        """True when both endpoints share the same y coordinate."""
        return self.a.y == self.b.y

    def is_vertical(self) -> bool:
        """True when both endpoints share the same x coordinate."""
        return self.a.x == self.b.x
