"""Geometry substrate: points, rectangles, discs, rectilinear regions,
simple polygons, and the Hilbert space-filling curve.

This package replaces the computational-geometry dependencies of the
original system (a MapOverlay implementation and ad-hoc disc/area
routines) with exact, dependency-free code specialised to the shapes
the paper actually uses: axis-aligned MBRs and discs.
"""

from .circle import Circle, circle_rect_intersection_area
from .hilbert import (
    HilbertGrid,
    hilbert_d_to_xy,
    hilbert_d_to_xy_batch,
    hilbert_xy_to_d,
    hilbert_xy_to_d_batch,
)
from .point import Point, centroid
from .polygon import Polygon
from .rect import Rect
from .region import (
    RectUnion,
    intervals_complement_within,
    intervals_cover,
    intervals_difference,
    intervals_total_length,
    merge_intervals,
)
from .segment import Segment
from .slabunion import SlabUnion

__all__ = [
    "Circle",
    "HilbertGrid",
    "Point",
    "Polygon",
    "Rect",
    "RectUnion",
    "Segment",
    "SlabUnion",
    "centroid",
    "circle_rect_intersection_area",
    "hilbert_d_to_xy",
    "hilbert_d_to_xy_batch",
    "hilbert_xy_to_d",
    "hilbert_xy_to_d_batch",
    "intervals_complement_within",
    "intervals_cover",
    "intervals_difference",
    "intervals_total_length",
    "merge_intervals",
]
