"""Cooperative caching: per-host POI stores with verified regions."""

from .entry import CacheItem, VerifiedRegion
from .policy import DirectionDistancePolicy, FIFOPolicy, LRUPolicy, ReplacementPolicy
from .store import EVICTION_MARGIN, POICache, shrink_rect_to_exclude

__all__ = [
    "CacheItem",
    "DirectionDistancePolicy",
    "EVICTION_MARGIN",
    "FIFOPolicy",
    "LRUPolicy",
    "POICache",
    "ReplacementPolicy",
    "VerifiedRegion",
    "shrink_rect_to_exclude",
]
