"""Cache replacement policies.

The paper's policy (after Ren & Dunham [13]) ranks eviction victims by
the distance between the host and the data object, penalising objects
that lie *behind* the host's direction of travel — a motorist will not
come back for them.  LRU and FIFO are included as ablation baselines.
"""

from __future__ import annotations

from typing import Protocol, Sequence

from ..geometry import Point
from .entry import CacheItem


class ReplacementPolicy(Protocol):
    """Ranks cached items most-evictable-first."""

    def rank_victims(
        self,
        items: Sequence[CacheItem],
        host_position: Point,
        heading: tuple[float, float],
    ) -> list[CacheItem]:
        """Return the items ordered so the first should be evicted first."""
        ...


class DirectionDistancePolicy:
    """Evict far-away objects, especially those behind the host.

    The score of an item is its distance from the host, multiplied by
    ``(1 + behind_penalty)`` when the object lies in the half-plane
    opposite the travel direction.  Largest score is evicted first;
    equal scores break ties toward the larger ``poi_id`` so rankings
    are reproducible regardless of cache insertion order.

    **Degenerate-heading contract**: a paused host (heading ``(0, 0)``
    — random-waypoint pause legs produce these routinely) has no
    "behind", so the policy explicitly degrades to pure
    farthest-distance eviction.  Before this was spelled out the
    zero heading silently zeroed every dot product, which *looked*
    like distance-only ranking but left the behaviour an accident of
    the comparison ``0 < 0`` and the sort's stability.
    """

    def __init__(self, behind_penalty: float = 1.0):
        if behind_penalty < 0:
            raise ValueError("behind_penalty must be non-negative")
        self.behind_penalty = behind_penalty

    def rank_victims(
        self,
        items: Sequence[CacheItem],
        host_position: Point,
        heading: tuple[float, float],
    ) -> list[CacheItem]:
        hx, hy = heading
        if hx == 0.0 and hy == 0.0:
            return sorted(
                items,
                key=lambda item: (
                    item.poi.distance_to(host_position),
                    item.poi.poi_id,
                ),
                reverse=True,
            )

        def score(item: CacheItem) -> tuple[float, int]:
            dist = item.poi.distance_to(host_position)
            dot = (item.poi.x - host_position.x) * hx + (
                item.poi.y - host_position.y
            ) * hy
            if dot < 0.0:
                return dist * (1.0 + self.behind_penalty), item.poi.poi_id
            return dist, item.poi.poi_id

        return sorted(items, key=score, reverse=True)


class LRUPolicy:
    """Evict the least recently used item first (ablation baseline)."""

    def rank_victims(
        self,
        items: Sequence[CacheItem],
        host_position: Point,
        heading: tuple[float, float],
    ) -> list[CacheItem]:
        return sorted(items, key=lambda item: item.last_used)


class FIFOPolicy:
    """Evict the oldest-inserted item first (ablation baseline)."""

    def rank_victims(
        self,
        items: Sequence[CacheItem],
        host_position: Point,
        heading: tuple[float, float],
    ) -> list[CacheItem]:
        return sorted(items, key=lambda item: item.inserted_at)
