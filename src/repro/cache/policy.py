"""Cache replacement policies.

The paper's policy (after Ren & Dunham [13]) ranks eviction victims by
the distance between the host and the data object, penalising objects
that lie *behind* the host's direction of travel — a motorist will not
come back for them.  LRU and FIFO are included as ablation baselines.
"""

from __future__ import annotations

import math
from typing import Protocol, Sequence

import numpy as np

from ..geometry import Point
from .entry import CacheItem


class ReplacementPolicy(Protocol):
    """Ranks cached items most-evictable-first."""

    def rank_victims(
        self,
        items: Sequence[CacheItem],
        host_position: Point,
        heading: tuple[float, float],
    ) -> list[CacheItem]:
        """Return the items ordered so the first should be evicted first."""
        ...


class DirectionDistancePolicy:
    """Evict far-away objects, especially those behind the host.

    The score of an item is its distance from the host, multiplied by
    ``(1 + behind_penalty)`` when the object lies in the half-plane
    opposite the travel direction.  Largest score is evicted first;
    equal scores break ties toward the larger ``poi_id`` so rankings
    are reproducible regardless of cache insertion order.

    **Degenerate-heading contract**: a paused host (heading ``(0, 0)``
    — random-waypoint pause legs produce these routinely) has no
    "behind", so the policy explicitly degrades to pure
    farthest-distance eviction.  Before this was spelled out the
    zero heading silently zeroed every dot product, which *looked*
    like distance-only ranking but left the behaviour an accident of
    the comparison ``0 < 0`` and the sort's stability.
    """

    def __init__(self, behind_penalty: float = 1.0):
        if behind_penalty < 0:
            raise ValueError("behind_penalty must be non-negative")
        self.behind_penalty = behind_penalty

    def rank_victims(
        self,
        items: Sequence[CacheItem],
        host_position: Point,
        heading: tuple[float, float],
    ) -> list[CacheItem]:
        items = list(items)
        n = len(items)
        if n <= 1:
            return items
        scores, ids = self.score_batch(items, host_position, heading)
        # Descending (score, poi_id): reverse-sorting the key tuples is
        # an ascending lexsort on the negated columns (poi_ids are
        # unique, so the order is total and stability is moot).
        order = np.lexsort((np.negative(ids), np.negative(scores)))
        return [items[i] for i in order]

    def score_batch(
        self,
        items: Sequence[CacheItem],
        host_position: Point,
        heading: tuple[float, float],
    ) -> tuple[np.ndarray, np.ndarray]:
        """Vectorised eviction scores over a structure-of-arrays view.

        Returns ``(scores, poi_ids)``; larger score means evict first.
        See :meth:`score_arrays` for the float contract.
        """
        # POI.x/.y are properties over .location; chase the Point once.
        locations = [item.poi.location for item in items]
        xs = np.array([p.x for p in locations], np.float64)
        ys = np.array([p.y for p in locations], np.float64)
        ids = np.array([item.poi.poi_id for item in items], np.int64)
        return self.score_arrays(xs, ys, host_position, heading), ids

    def score_arrays(
        self,
        xs: np.ndarray,
        ys: np.ndarray,
        host_position: Point,
        heading: tuple[float, float],
    ) -> np.ndarray:
        """Eviction scores straight from coordinate arrays.

        The distance column runs ``math.hypot`` per element (its
        rounding differs from ``np.hypot`` in ~0.6 % of cases and the
        historical ranking depends on it); the behind-penalty and the
        degenerate-heading degradation are applied as array ops with
        the same float expressions as the scalar definition.
        """
        dx = xs - host_position.x
        dy = ys - host_position.y
        dist = np.fromiter(
            map(math.hypot, dx.tolist(), dy.tolist()), np.float64, dx.size
        )
        hx, hy = heading
        if hx == 0.0 and hy == 0.0:
            # Degenerate-heading contract: pure farthest-distance.
            return dist
        behind = dx * hx + dy * hy < 0.0
        return np.where(behind, dist * (1.0 + self.behind_penalty), dist)

    def select_victims(
        self,
        xs: np.ndarray,
        ys: np.ndarray,
        ids: np.ndarray,
        excess: int,
        host_position: Point,
        heading: tuple[float, float],
    ) -> np.ndarray:
        """Indices of the top-``excess`` victims, in eviction order.

        Identical ranking to :meth:`rank_victims` sliced to ``excess``
        (the batch-eviction property suite pins the two).  Small pools
        score every item directly — at typical cache sizes (tens to a
        few hundred items) the exact kernel is a handful of array ops
        and any pruning machinery costs more than it saves.  Large
        pools run the exact per-element ``math.hypot`` only on a
        pruned candidate set:

        * every score is bracketed by the Chebyshev distance below and
          the Manhattan distance above (``max(|dx|,|dy|) <= hypot <=
          |dx|+|dy|``).  Each bound is one correctly-rounded operation
          away from its exact value, and IEEE round-to-nearest is
          monotone, so after the behind-penalty multiply the float
          bracket still holds *elementwise* for the float scores;
        * at least ``excess`` items have a lower bound at or above the
          ``excess``-th largest lower bound ``T``, so any item whose
          upper bound falls below ``T`` ranks strictly below ``excess``
          better items and can never be a victim.
        """
        n = int(ids.size)
        excess = min(excess, n)
        if excess <= 0:
            return np.empty(0, dtype=np.intp)
        if n < 512:
            scores = self.score_arrays(xs, ys, host_position, heading)
            order = np.lexsort((np.negative(ids), np.negative(scores)))
            return order[:excess]
        dx = xs - host_position.x
        dy = ys - host_position.y
        adx = np.abs(dx)
        ady = np.abs(dy)
        lower = np.maximum(adx, ady)
        upper = adx + ady
        hx, hy = heading
        degenerate = hx == 0.0 and hy == 0.0
        if not degenerate:
            mult = np.where(
                dx * hx + dy * hy < 0.0, 1.0 + self.behind_penalty, 1.0
            )
            lower = lower * mult
            upper = upper * mult
        if excess >= n:
            candidates = np.arange(n, dtype=np.intp)
        else:
            threshold = np.partition(lower, n - excess)[n - excess]
            candidates = np.flatnonzero(upper >= threshold)
        cdx = dx[candidates]
        cdy = dy[candidates]
        scores = np.fromiter(
            map(math.hypot, cdx.tolist(), cdy.tolist()),
            np.float64,
            candidates.size,
        )
        if not degenerate:
            scores = np.where(
                cdx * hx + cdy * hy < 0.0,
                scores * (1.0 + self.behind_penalty),
                scores,
            )
        order = np.lexsort(
            (np.negative(ids[candidates]), np.negative(scores))
        )
        return candidates[order[:excess]]


class LRUPolicy:
    """Evict the least recently used item first (ablation baseline)."""

    def rank_victims(
        self,
        items: Sequence[CacheItem],
        host_position: Point,
        heading: tuple[float, float],
    ) -> list[CacheItem]:
        return sorted(items, key=lambda item: item.last_used)


class FIFOPolicy:
    """Evict the oldest-inserted item first (ablation baseline)."""

    def rank_victims(
        self,
        items: Sequence[CacheItem],
        host_position: Point,
        heading: tuple[float, float],
    ) -> list[CacheItem]:
        return sorted(items, key=lambda item: item.inserted_at)
