"""The per-host cooperative cache.

Invariant (tested property): every verified region only covers space
whose server POIs are *all* present in the cache.  Insertions provide
a region together with the complete POI set inside it; evictions first
shrink any region containing the victim so the invariant survives.

Shrinking cuts the region along the side that loses the least area and
pushes the cut a hair (``EVICTION_MARGIN``) past the victim so the
victim ends up strictly outside the closed region.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..check import invariants
from ..errors import CacheError
from ..geometry import Point, Rect
from ..model import POI
from .entry import CacheItem, VerifiedRegion
from .policy import DirectionDistancePolicy, ReplacementPolicy

EVICTION_MARGIN = 1e-9


def _descending_area(vr: "VerifiedRegion") -> float:
    """Sort key of the coalescing pass (module-level: no closure rebuild)."""
    return -vr.area


def shrink_rect_to_exclude(rect: Rect, p: Point) -> Rect | None:
    """The largest of the four axis cuts of ``rect`` that excludes ``p``.

    Returns ``None`` when no positive-area remainder exists.

    The candidate areas are compared arithmetically (same expressions
    as ``Rect.area``, same left/right/down/up precedence on ties) and
    only the winning rectangle is constructed — this runs once per
    (region, victim) shrink, the hottest loop of cache eviction.
    """
    if not rect.contains_point(p):
        return rect
    x1, y1, x2, y2 = rect.x1, rect.y1, rect.x2, rect.y2
    cut_left = p.x - EVICTION_MARGIN
    cut_right = p.x + EVICTION_MARGIN
    cut_down = p.y - EVICTION_MARGIN
    cut_up = p.y + EVICTION_MARGIN
    width = x2 - x1
    height = y2 - y1
    best = -1
    best_area = 0.0
    if cut_left > x1:
        w = cut_left - x1
        if w != 0.0 and height != 0.0:
            best, best_area = 0, w * height
    if cut_right < x2:
        w = x2 - cut_right
        if w != 0.0 and height != 0.0:
            area = w * height
            if area > best_area or best < 0:
                best, best_area = 1, area
    if cut_down > y1:
        h = cut_down - y1
        if width != 0.0 and h != 0.0:
            area = width * h
            if area > best_area or best < 0:
                best, best_area = 2, area
    if cut_up < y2:
        h = y2 - cut_up
        if width != 0.0 and h != 0.0:
            area = width * h
            if area > best_area or best < 0:
                best, best_area = 3, area
    if best < 0:
        return None
    if best == 0:
        return Rect(x1, y1, cut_left, y2)
    if best == 1:
        return Rect(cut_right, y1, x2, y2)
    if best == 2:
        return Rect(x1, y1, x2, cut_down)
    return Rect(x1, cut_up, x2, y2)


class POICache:
    """Bounded POI cache with verified-region maintenance."""

    def __init__(
        self,
        capacity: int,
        policy: ReplacementPolicy | None = None,
        max_regions: int = 4,
    ):
        if capacity < 1:
            raise CacheError(f"cache capacity must be >= 1, got {capacity}")
        if max_regions < 1:
            raise CacheError(f"max_regions must be >= 1, got {max_regions}")
        self.capacity = capacity
        self.max_regions = max_regions
        self.policy = policy if policy is not None else DirectionDistancePolicy()
        self._items: dict[int, CacheItem] = {}
        self._regions: list[VerifiedRegion] = []
        # Monotone content stamp: bumped whenever the POI set or the
        # verified regions change, so share responses and merged MVRs
        # can be memoised on (host, generation) and stay sound.
        self.generation = 0
        # Optional repro.obs.Tracer; when set (and enabled) every
        # insert_result emits a ``cache.insert`` span nested under the
        # active query span.
        self.tracer = None
        # True while no region has been shrunk (or dropped) by an
        # eviction since the last full coalesce — the precondition for
        # the coalesce fast path (no containments can lurk among the
        # kept regions).
        self._regions_coalesced = True
        # (generation, payload) memos for the share/pois accessors.
        self._pois_memo: tuple[int, tuple[POI, ...]] | None = None
        self._share_memo: tuple[int, tuple[Rect, ...], tuple[POI, ...]] | None = None

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._items)

    def __contains__(self, poi_id: int) -> bool:
        return poi_id in self._items

    @property
    def pois(self) -> list[POI]:
        """The cached POIs (insertion order), memoised per generation."""
        memo = self._pois_memo
        generation = self.generation
        if memo is None or memo[0] != generation:
            memo = (
                generation,
                tuple([item.poi for item in self._items.values()]),
            )
            self._pois_memo = memo
        return list(memo[1])

    @property
    def regions(self) -> list[VerifiedRegion]:
        return list(self._regions)

    @property
    def region_rects(self) -> list[Rect]:
        return [vr.rect for vr in self._regions]

    # ------------------------------------------------------------------
    def insert_result(
        self,
        region: Rect,
        pois: Sequence[POI],
        now: float,
        host_position: Point,
        heading: tuple[float, float] = (0.0, 0.0),
    ) -> None:
        """Store a query result: a region plus *all* server POIs in it.

        Completeness of ``pois`` within ``region`` is the caller's
        contract; capacity pressure is resolved here by policy-ranked
        eviction with region shrinking.

        The content generation moves at most once per call, however
        many POIs, regions, and evictions the call touches — share
        responses and merged-MVR memos key on the generation, so a
        double bump would invalidate them twice for one change.
        """
        tracer = self.tracer
        if tracer is None or not tracer.enabled:
            self._insert_result(region, pois, now, host_position, heading)
            return
        with tracer.span("cache.insert") as span:
            added, evicted = self._insert_result(
                region, pois, now, host_position, heading
            )
            span.set(
                pois_offered=len(pois),
                pois_added=added,
                pois_evicted=evicted,
                regions=len(self._regions),
                size=len(self._items),
            )

    def _insert_result(
        self,
        region: Rect,
        pois: Sequence[POI],
        now: float,
        host_position: Point,
        heading: tuple[float, float],
    ) -> tuple[int, int]:
        """The uninstrumented insert; returns (POIs added, POIs evicted)."""
        added = 0
        items = self._items
        get = items.get
        for poi in pois:
            item = get(poi.poi_id)
            if item is not None:
                item.last_used = now
            else:
                items[poi.poi_id] = CacheItem(poi, now, now)
                added += 1
        changed = added > 0
        # Inline Rect.is_degenerate (zero width or height): IEEE
        # subtraction is zero exactly when the operands are equal.
        if region.x2 != region.x1 and region.y2 != region.y1:
            changed = True
            self._regions.append(VerifiedRegion(region, now))
            self._coalesce_regions()
            while len(self._regions) > self.max_regions:
                # Drop the region farthest from the host; its POIs stay.
                farthest = max(
                    self._regions,
                    key=lambda vr: vr.rect.distance_to_point(host_position),
                )
                self._regions.remove(farthest)
        # Inlined no-excess guard: most inserts sit at or under
        # capacity and skip the call entirely.
        evicted = 0
        if len(items) > self.capacity:
            evicted = self._enforce_capacity(now, host_position, heading)
        if changed or evicted:
            self.generation += 1
        if invariants.ENABLED:
            invariants.check_cache(self)
        return added, evicted

    def touch(self, poi_ids: Iterable[int], now: float) -> None:
        """Record use of cached POIs (LRU bookkeeping)."""
        for poi_id in poi_ids:
            item = self._items.get(poi_id)
            if item is not None:
                item.last_used = now

    def share(self) -> tuple[list[Rect], list[POI]]:
        """What this host sends a requesting peer: VR rects + POIs.

        Serving a peer is not a local *use* of the data, so it leaves
        the LRU clock alone (callers record genuine uses via
        :meth:`touch`) and needs no clock at all — the content depends
        only on the cache state, never on when the request arrives.

        The payload is memoised on the content generation: the stamp
        moves exactly when the POI set or the regions change, so the
        memo is rebuilt precisely as often as the content differs.
        Fresh list copies are returned so callers may mutate them.
        """
        memo = self._share_memo
        generation = self.generation
        if memo is None or memo[0] != generation:
            memo = (generation, tuple(self.region_rects), tuple(self.pois))
            self._share_memo = memo
        return list(memo[1]), list(memo[2])

    def pois_in(self, rect: Rect) -> list[POI]:
        """Cached POIs inside a rectangle (sorted by id)."""
        hits = [
            item.poi
            for item in self._items.values()
            if rect.contains_point(item.poi.location)
        ]
        hits.sort(key=lambda p: p.poi_id)
        return hits

    # ------------------------------------------------------------------
    def _coalesce_regions(self) -> None:
        """Drop regions fully covered by another (newer wins ties).

        Fast path: while ``_regions_coalesced`` holds (no eviction has
        shrunk a region since the last coalesce) the incumbents are
        mutually containment-free and area-sorted, so the only
        possible containments involve the newcomer (always the last
        appended).  One pass over the incumbents settles everything:
        an incumbent covering the newcomer means nothing changes (the
        full scan, processing larger areas first, would drop the
        newcomer — ties too, since the stable sort keeps the
        incumbent ahead); otherwise any incumbents the newcomer
        covers are dropped and the newcomer binary-inserts into the
        sorted survivors, ties landing behind, exactly where the
        stable full-scan sort would put it.  The two containment
        directions are mutually exclusive across the pass — newcomer
        inside one incumbent and around another would nest the two
        incumbents, contradicting containment-freeness.

        The flag matters: shrinking can push a kept region inside a
        sibling, and those stale containments are only cleaned up by
        the full scan below.
        """
        regions = self._regions
        if len(regions) > 1:
            if self._regions_coalesced:
                new_vr = regions[-1]
                new = new_vr.rect
                nx1, ny1, nx2, ny2 = new.x1, new.y1, new.x2, new.y2
                covered: list[int] | None = None
                for idx in range(len(regions) - 1):
                    o = regions[idx].rect
                    ox1, oy1, ox2, oy2 = o.x1, o.y1, o.x2, o.y2
                    if ox1 <= nx1 and oy1 <= ny1 and nx2 <= ox2 and ny2 <= oy2:
                        regions.pop()
                        return
                    if nx1 <= ox1 and ny1 <= oy1 and ox2 <= nx2 and oy2 <= ny2:
                        if covered is None:
                            covered = [idx]
                        else:
                            covered.append(idx)
                regions.pop()
                if covered is not None:
                    for idx in reversed(covered):
                        del regions[idx]
                area = new_vr.area
                if regions and regions[-1].area >= area:
                    regions.append(new_vr)
                else:
                    lo, hi = 0, len(regions)
                    while lo < hi:
                        mid = (lo + hi) // 2
                        if regions[mid].area >= area:
                            lo = mid + 1
                        else:
                            hi = mid
                    regions.insert(lo, new_vr)
                return
            kept: list[VerifiedRegion] = []
            for vr in sorted(regions, key=_descending_area):
                rect = vr.rect
                rx1, ry1, rx2, ry2 = rect.x1, rect.y1, rect.x2, rect.y2
                for other in kept:
                    o = other.rect
                    if o.x1 <= rx1 and o.y1 <= ry1 and rx2 <= o.x2 and ry2 <= o.y2:
                        break
                else:
                    kept.append(vr)
            self._regions = kept
        self._regions_coalesced = True

    def _enforce_capacity(
        self, now: float, host_position: Point, heading: tuple[float, float]
    ) -> int:
        """Evict down to capacity; returns the number of POIs evicted.

        Eviction is batched: every victim is ranked in one vectorised
        policy call, all victims leave the POI table in one pass, and
        the verified regions are repaired once for the whole batch —
        the per-victim path re-scanned every region per eviction.  The
        batch is observationally identical to evicting the ranked
        victims one at a time (the property suite pins this against
        :meth:`_evict`).
        """
        excess = len(self._items) - self.capacity
        if excess <= 0:
            return 0
        victims = self.policy.rank_victims(
            list(self._items.values()), host_position, heading
        )[:excess]
        items = self._items
        for item in victims:
            del items[item.poi.poi_id]
        self._repair_regions([item.poi.location for item in victims])
        return excess

    def _repair_regions(self, victims: Sequence[Point]) -> None:
        """Shrink every region covering an evicted point, in one pass.

        Equivalent to applying the per-victim shrink loop of
        :meth:`_evict` victim by victim: regions are independent of
        one another, so the victim loop can move inside the region
        loop as long as each region sees the victims in eviction
        order.  ``max_regions`` keeps the outer loop tiny, so the
        containment test runs on local floats (refreshed after each
        shrink) rather than a batched matrix build.
        """
        regions = self._regions
        if not regions or not victims:
            return
        updated: list[VerifiedRegion] = []
        changed = False
        for vr in regions:
            rect = vr.rect
            x1, y1, x2, y2 = rect.x1, rect.y1, rect.x2, rect.y2
            for p in victims:
                if x1 <= p.x <= x2 and y1 <= p.y <= y2:
                    rect = shrink_rect_to_exclude(rect, p)
                    if rect is None:
                        break
                    x1, y1, x2, y2 = rect.x1, rect.y1, rect.x2, rect.y2
            if rect is None:
                changed = True
            elif rect is vr.rect:
                updated.append(vr)
            else:
                changed = True
                updated.append(VerifiedRegion(rect, vr.created_at))
        if changed:
            self._regions = updated
            self._regions_coalesced = False

    def _evict(self, poi: POI) -> None:
        """Remove one POI, shrinking every region that covers it.

        The sequential reference path: :meth:`_enforce_capacity` now
        batches its evictions, and the property suite checks the batch
        against this per-victim loop.  Generation bookkeeping is the
        caller's job (the public mutators bump it once per call).
        """
        if poi.poi_id not in self._items:
            raise CacheError(f"evicting uncached POI {poi.poi_id}")
        del self._items[poi.poi_id]
        updated: list[VerifiedRegion] = []
        shrunk_any = False
        for vr in self._regions:
            if not vr.rect.contains_point(poi.location):
                updated.append(vr)
                continue
            shrunk_any = True
            shrunk = shrink_rect_to_exclude(vr.rect, poi.location)
            if shrunk is not None:
                updated.append(VerifiedRegion(shrunk, vr.created_at))
        if shrunk_any:
            self._regions = updated
            self._regions_coalesced = False

    # ------------------------------------------------------------------
    def check_soundness(
        self, server_pois: Iterable[POI], margin: float = EVICTION_MARGIN
    ) -> None:
        """Test helper: assert the verified-region invariant.

        Every server POI strictly inside a region (by more than
        ``margin``) must be cached.
        """
        for vr in self._regions:
            inner = vr.rect
            try:
                inner = inner.expanded(-margin)
            except Exception:
                continue
            for poi in server_pois:
                if inner.contains_point(poi.location) and poi.poi_id not in self:
                    raise CacheError(
                        f"verified region {vr.rect.as_tuple()} covers uncached"
                        f" POI {poi.poi_id} at ({poi.x}, {poi.y})"
                    )
