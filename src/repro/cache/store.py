"""The per-host cooperative cache.

Invariant (tested property): every verified region only covers space
whose server POIs are *all* present in the cache.  Insertions provide
a region together with the complete POI set inside it; evictions first
shrink any region containing the victim so the invariant survives.

Shrinking cuts the region along the side that loses the least area and
pushes the cut a hair (``EVICTION_MARGIN``) past the victim so the
victim ends up strictly outside the closed region.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..check import invariants
from ..errors import CacheError
from ..geometry import Point, Rect
from ..model import POI
from .entry import CacheItem, VerifiedRegion
from .policy import DirectionDistancePolicy, ReplacementPolicy

EVICTION_MARGIN = 1e-9


def shrink_rect_to_exclude(rect: Rect, p: Point) -> Rect | None:
    """The largest of the four axis cuts of ``rect`` that excludes ``p``.

    Returns ``None`` when no positive-area remainder exists.
    """
    if not rect.contains_point(p):
        return rect
    candidates: list[Rect] = []
    cut_left = p.x - EVICTION_MARGIN
    cut_right = p.x + EVICTION_MARGIN
    cut_down = p.y - EVICTION_MARGIN
    cut_up = p.y + EVICTION_MARGIN
    if cut_left > rect.x1:
        candidates.append(Rect(rect.x1, rect.y1, cut_left, rect.y2))
    if cut_right < rect.x2:
        candidates.append(Rect(cut_right, rect.y1, rect.x2, rect.y2))
    if cut_down > rect.y1:
        candidates.append(Rect(rect.x1, rect.y1, rect.x2, cut_down))
    if cut_up < rect.y2:
        candidates.append(Rect(rect.x1, cut_up, rect.x2, rect.y2))
    candidates = [r for r in candidates if not r.is_degenerate()]
    if not candidates:
        return None
    return max(candidates, key=lambda r: r.area)


class POICache:
    """Bounded POI cache with verified-region maintenance."""

    def __init__(
        self,
        capacity: int,
        policy: ReplacementPolicy | None = None,
        max_regions: int = 4,
    ):
        if capacity < 1:
            raise CacheError(f"cache capacity must be >= 1, got {capacity}")
        if max_regions < 1:
            raise CacheError(f"max_regions must be >= 1, got {max_regions}")
        self.capacity = capacity
        self.max_regions = max_regions
        self.policy = policy if policy is not None else DirectionDistancePolicy()
        self._items: dict[int, CacheItem] = {}
        self._regions: list[VerifiedRegion] = []
        # Monotone content stamp: bumped whenever the POI set or the
        # verified regions change, so share responses and merged MVRs
        # can be memoised on (host, generation) and stay sound.
        self.generation = 0
        # Optional repro.obs.Tracer; when set (and enabled) every
        # insert_result emits a ``cache.insert`` span nested under the
        # active query span.
        self.tracer = None

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._items)

    def __contains__(self, poi_id: int) -> bool:
        return poi_id in self._items

    @property
    def pois(self) -> list[POI]:
        return [item.poi for item in self._items.values()]

    @property
    def regions(self) -> list[VerifiedRegion]:
        return list(self._regions)

    @property
    def region_rects(self) -> list[Rect]:
        return [vr.rect for vr in self._regions]

    # ------------------------------------------------------------------
    def insert_result(
        self,
        region: Rect,
        pois: Sequence[POI],
        now: float,
        host_position: Point,
        heading: tuple[float, float] = (0.0, 0.0),
    ) -> None:
        """Store a query result: a region plus *all* server POIs in it.

        Completeness of ``pois`` within ``region`` is the caller's
        contract; capacity pressure is resolved here by policy-ranked
        eviction with region shrinking.

        The content generation moves at most once per call, however
        many POIs, regions, and evictions the call touches — share
        responses and merged-MVR memos key on the generation, so a
        double bump would invalidate them twice for one change.
        """
        tracer = self.tracer
        if tracer is None or not tracer.enabled:
            self._insert_result(region, pois, now, host_position, heading)
            return
        with tracer.span("cache.insert") as span:
            added, evicted = self._insert_result(
                region, pois, now, host_position, heading
            )
            span.set(
                pois_offered=len(pois),
                pois_added=added,
                pois_evicted=evicted,
                regions=len(self._regions),
                size=len(self._items),
            )

    def _insert_result(
        self,
        region: Rect,
        pois: Sequence[POI],
        now: float,
        host_position: Point,
        heading: tuple[float, float],
    ) -> tuple[int, int]:
        """The uninstrumented insert; returns (POIs added, POIs evicted)."""
        added = 0
        changed = False
        for poi in pois:
            if poi.poi_id in self._items:
                self._items[poi.poi_id].last_used = now
            else:
                self._items[poi.poi_id] = CacheItem(poi, now, now)
                added += 1
                changed = True
        if not region.is_degenerate():
            changed = True
            self._regions.append(VerifiedRegion(region, now))
            self._coalesce_regions()
            while len(self._regions) > self.max_regions:
                # Drop the region farthest from the host; its POIs stay.
                farthest = max(
                    self._regions,
                    key=lambda vr: vr.rect.distance_to_point(host_position),
                )
                self._regions.remove(farthest)
        evicted = self._enforce_capacity(now, host_position, heading)
        if changed or evicted:
            self.generation += 1
        if invariants.check_enabled():
            invariants.check_cache(self)
        return added, evicted

    def touch(self, poi_ids: Iterable[int], now: float) -> None:
        """Record use of cached POIs (LRU bookkeeping)."""
        for poi_id in poi_ids:
            item = self._items.get(poi_id)
            if item is not None:
                item.last_used = now

    def share(self) -> tuple[list[Rect], list[POI]]:
        """What this host sends a requesting peer: VR rects + POIs.

        Serving a peer is not a local *use* of the data, so it leaves
        the LRU clock alone (callers record genuine uses via
        :meth:`touch`) and needs no clock at all — the content depends
        only on the cache state, never on when the request arrives.
        """
        return self.region_rects, self.pois

    def pois_in(self, rect: Rect) -> list[POI]:
        """Cached POIs inside a rectangle (sorted by id)."""
        hits = [
            item.poi
            for item in self._items.values()
            if rect.contains_point(item.poi.location)
        ]
        hits.sort(key=lambda p: p.poi_id)
        return hits

    # ------------------------------------------------------------------
    def _coalesce_regions(self) -> None:
        """Drop regions fully covered by another (newer wins ties)."""
        kept: list[VerifiedRegion] = []
        for vr in sorted(self._regions, key=lambda v: -v.area):
            if not any(other.rect.contains_rect(vr.rect) for other in kept):
                kept.append(vr)
        self._regions = kept

    def _enforce_capacity(
        self, now: float, host_position: Point, heading: tuple[float, float]
    ) -> int:
        """Evict down to capacity; returns the number of POIs evicted."""
        if len(self._items) <= self.capacity:
            return 0
        victims = self.policy.rank_victims(
            list(self._items.values()), host_position, heading
        )
        excess = len(self._items) - self.capacity
        for item in victims[:excess]:
            self._evict(item.poi)
        return excess

    def _evict(self, poi: POI) -> None:
        """Remove one POI, shrinking every region that covers it.

        Generation bookkeeping is the caller's job (the public
        mutators bump it once per call).
        """
        if poi.poi_id not in self._items:
            raise CacheError(f"evicting uncached POI {poi.poi_id}")
        del self._items[poi.poi_id]
        updated: list[VerifiedRegion] = []
        for vr in self._regions:
            if not vr.rect.contains_point(poi.location):
                updated.append(vr)
                continue
            shrunk = shrink_rect_to_exclude(vr.rect, poi.location)
            if shrunk is not None:
                updated.append(VerifiedRegion(shrunk, vr.created_at))
        self._regions = updated

    # ------------------------------------------------------------------
    def check_soundness(
        self, server_pois: Iterable[POI], margin: float = EVICTION_MARGIN
    ) -> None:
        """Test helper: assert the verified-region invariant.

        Every server POI strictly inside a region (by more than
        ``margin``) must be cached.
        """
        for vr in self._regions:
            inner = vr.rect
            try:
                inner = inner.expanded(-margin)
            except Exception:
                continue
            for poi in server_pois:
                if inner.contains_point(poi.location) and poi.poi_id not in self:
                    raise CacheError(
                        f"verified region {vr.rect.as_tuple()} covers uncached"
                        f" POI {poi.poi_id} at ({poi.x}, {poi.y})"
                    )
