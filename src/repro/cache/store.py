"""The per-host cooperative cache.

Invariant (tested property): every verified region only covers space
whose server POIs are *all* present in the cache.  Insertions provide
a region together with the complete POI set inside it; evictions first
shrink any region containing the victim so the invariant survives.

Shrinking cuts the region along the side that loses the least area and
pushes the cut a hair (``EVICTION_MARGIN``) past the victim so the
victim ends up strictly outside the closed region.

Two auxiliary structures ride along with the POI table:

* a structure-of-arrays mirror of the cached POI coordinates and ids
  (append on insert, swap-remove on evict), so the eviction policy
  scores candidates straight from arrays instead of rebuilding them
  from the item dict on every capacity breach;
* a lazily materialised :class:`~repro.geometry.SlabUnion` mirror of
  the verified regions (:attr:`POICache.region_union`): inserts update
  the affected slabs, evictions become point-cut subtractions.  The
  mirror is a *sound over-approximation refined per eviction* — it
  keeps the verified area the rectangle shrinking forfeits — while
  ``_regions`` remains the exact wire format ``share()`` sends.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..check import invariants
from ..errors import CacheError
from ..geometry import Point, Rect, SlabUnion
from ..model import POI
from .entry import CacheItem, VerifiedRegion
from .policy import DirectionDistancePolicy, ReplacementPolicy

import numpy as np

EVICTION_MARGIN = 1e-9

# Slab count above which the region mirror is dropped and lazily
# rebuilt from the (few, coalesced) wire-format regions: point cuts
# accrete two x cuts each, and past this size a fresh bulk build is
# cheaper than carrying the perforations.
MIRROR_COMPACT_SLABS = 96


def _descending_area(vr: "VerifiedRegion") -> float:
    """Sort key of the coalescing pass (module-level: no closure rebuild)."""
    return -vr.area


def shrink_rect_to_exclude(rect: Rect, p: Point) -> Rect | None:
    """The largest of the four axis cuts of ``rect`` that excludes ``p``."""
    return shrink_rect_to_exclude_xy(rect, p.x, p.y)


def shrink_rect_to_exclude_xy(rect: Rect, px: float, py: float) -> Rect | None:
    """The largest of the four axis cuts of ``rect`` excluding ``(px, py)``.

    Returns ``None`` when no positive-area remainder exists.

    The candidate areas are compared arithmetically (same expressions
    as ``Rect.area``, same left/right/down/up precedence on ties) and
    only the winning rectangle is constructed — this runs once per
    (region, victim) shrink, the hottest loop of cache eviction, so
    the victim arrives as two floats straight off the eviction arrays
    rather than a constructed :class:`Point`.
    """
    x1, y1, x2, y2 = rect.x1, rect.y1, rect.x2, rect.y2
    if not (x1 <= px <= x2 and y1 <= py <= y2):
        return rect
    cut_left = px - EVICTION_MARGIN
    cut_right = px + EVICTION_MARGIN
    cut_down = py - EVICTION_MARGIN
    cut_up = py + EVICTION_MARGIN
    width = x2 - x1
    height = y2 - y1
    best = -1
    best_area = 0.0
    if cut_left > x1:
        w = cut_left - x1
        if w != 0.0 and height != 0.0:
            best, best_area = 0, w * height
    if cut_right < x2:
        w = x2 - cut_right
        if w != 0.0 and height != 0.0:
            area = w * height
            if area > best_area or best < 0:
                best, best_area = 1, area
    if cut_down > y1:
        h = cut_down - y1
        if width != 0.0 and h != 0.0:
            area = width * h
            if area > best_area or best < 0:
                best, best_area = 2, area
    if cut_up < y2:
        h = y2 - cut_up
        if width != 0.0 and h != 0.0:
            area = width * h
            if area > best_area or best < 0:
                best, best_area = 3, area
    if best < 0:
        return None
    if best == 0:
        return Rect(x1, y1, cut_left, y2)
    if best == 1:
        return Rect(cut_right, y1, x2, y2)
    if best == 2:
        return Rect(x1, y1, x2, cut_down)
    return Rect(x1, cut_up, x2, y2)


class POICache:
    """Bounded POI cache with verified-region maintenance."""

    def __init__(
        self,
        capacity: int,
        policy: ReplacementPolicy | None = None,
        max_regions: int = 4,
        incremental: bool = True,
    ):
        if capacity < 1:
            raise CacheError(f"cache capacity must be >= 1, got {capacity}")
        if max_regions < 1:
            raise CacheError(f"max_regions must be >= 1, got {max_regions}")
        self.capacity = capacity
        self.max_regions = max_regions
        self.policy = policy if policy is not None else DirectionDistancePolicy()
        # ``incremental=False`` pins the sequential reference paths
        # (full rank-and-slice eviction, append+coalesce on every
        # insert) for the churn differential suite; both paths must
        # produce bit-identical observable state.
        self.incremental = incremental
        self._items: dict[int, CacheItem] = {}
        self._regions: list[VerifiedRegion] = []
        # Structure-of-arrays mirror of the POI table: coordinates and
        # ids appended on insert, swap-removed on evict, so capacity
        # enforcement scores candidates without rebuilding arrays from
        # the item dict.  No id->slot map is kept — the batch eviction
        # path already knows its victims' slots, and the sequential
        # reference path (:meth:`_evict`) scans the id column.
        self._slot_n = 0
        self._slot_xs = np.empty(64, np.float64)
        self._slot_ys = np.empty(64, np.float64)
        self._slot_ids = np.empty(64, np.int64)
        # Lazily materialised slab-decomposition mirror of the
        # verified regions (see the module docstring); ``None`` means
        # "rebuild from region_rects on next access".
        self._mirror: SlabUnion | None = None
        # Monotone content stamp: bumped whenever the POI set or the
        # verified regions change, so share responses and merged MVRs
        # can be memoised on (host, generation) and stay sound.
        self.generation = 0
        # Optional repro.obs.Tracer; when set (and enabled) every
        # insert_result emits a ``cache.insert`` span nested under the
        # active query span.
        self.tracer = None
        # True while no region has been shrunk (or dropped) by an
        # eviction since the last full coalesce — the precondition for
        # the coalesce fast path (no containments can lurk among the
        # kept regions).
        self._regions_coalesced = True
        # (generation, payload) memos for the share/pois accessors.
        self._pois_memo: tuple[int, tuple[POI, ...]] | None = None
        self._share_memo: tuple[int, tuple[Rect, ...], tuple[POI, ...]] | None = None
        # Memoised frozen export (see :meth:`frozen_snapshot`).
        self._snapshot_memo: (
            tuple[int, tuple[Rect, ...], tuple[POI, ...], SlabUnion] | None
        ) = None

    # ------------------------------------------------------------------
    def _drop_slot_of(self, poi_id: int) -> None:
        """Swap-remove one POI from the coordinate arrays by id.

        Scans the (small) id column — only the sequential reference
        paths come through here; the batch eviction path already
        knows its victims' slot indices.
        """
        last = self._slot_n - 1
        ids_b = self._slot_ids
        slot = int(np.flatnonzero(ids_b[: last + 1] == poi_id)[0])
        self._slot_n = last
        if slot != last:
            self._slot_xs[slot] = self._slot_xs[last]
            self._slot_ys[slot] = self._slot_ys[last]
            ids_b[slot] = ids_b[last]

    def _grow_slots(self) -> None:
        """Double the coordinate-array capacity (amortised O(1))."""
        n = self._slot_n
        for name in ("_slot_xs", "_slot_ys", "_slot_ids"):
            old = getattr(self, name)
            grown = np.empty(2 * n, old.dtype)
            grown[:n] = old
            setattr(self, name, grown)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._items)

    def __contains__(self, poi_id: int) -> bool:
        return poi_id in self._items

    @property
    def pois(self) -> list[POI]:
        """The cached POIs (insertion order), memoised per generation."""
        memo = self._pois_memo
        generation = self.generation
        if memo is None or memo[0] != generation:
            memo = (
                generation,
                tuple([item.poi for item in self._items.values()]),
            )
            self._pois_memo = memo
        return list(memo[1])

    @property
    def regions(self) -> list[VerifiedRegion]:
        return list(self._regions)

    @property
    def region_rects(self) -> list[Rect]:
        return [vr.rect for vr in self._regions]

    @property
    def region_union(self) -> SlabUnion:
        """Live slab-decomposition union of this host's verified area.

        Materialised lazily from the wire-format rectangles, then
        maintained incrementally: region inserts update the affected
        slabs, evictions subtract a point cut around each victim.
        The result is a *sound superset* of ``RectUnion(region_rects)``
        — rectangle shrinking forfeits a whole strip per victim where
        the mirror only loses the margin square — so containment in
        the mirror still implies complete cached POI knowledge (the
        invariant :meth:`check_soundness` asserts).
        """
        mirror = self._mirror
        if mirror is None:
            mirror = SlabUnion.from_rects(self.region_rects)
            self._mirror = mirror
        return mirror

    # ------------------------------------------------------------------
    def insert_result(
        self,
        region: Rect,
        pois: Sequence[POI],
        now: float,
        host_position: Point,
        heading: tuple[float, float] = (0.0, 0.0),
    ) -> None:
        """Store a query result: a region plus *all* server POIs in it.

        Completeness of ``pois`` within ``region`` is the caller's
        contract; capacity pressure is resolved here by policy-ranked
        eviction with region shrinking.

        The content generation moves at most once per call, however
        many POIs, regions, and evictions the call touches — share
        responses and merged-MVR memos key on the generation, so a
        double bump would invalidate them twice for one change.
        """
        tracer = self.tracer
        if tracer is None or not tracer.enabled:
            self._insert_result(region, pois, now, host_position, heading)
            return
        with tracer.span("cache.insert") as span:
            added, evicted = self._insert_result(
                region, pois, now, host_position, heading
            )
            span.set(
                pois_offered=len(pois),
                pois_added=added,
                pois_evicted=evicted,
                regions=len(self._regions),
                size=len(self._items),
            )

    def _insert_result(
        self,
        region: Rect,
        pois: Sequence[POI],
        now: float,
        host_position: Point,
        heading: tuple[float, float],
    ) -> tuple[int, int]:
        """The uninstrumented insert; returns (POIs added, POIs evicted)."""
        items = self._items
        n = self._slot_n
        xs_b = self._slot_xs
        ys_b = self._slot_ys
        ids_b = self._slot_ids
        cap = xs_b.size
        start_n = n
        new_item = CacheItem.__new__
        for poi in pois:
            # ``in`` + subscript instead of ``dict.get``: the
            # containment and subscript opcodes stay off the profiled
            # C-call path this loop otherwise dominates, and misses
            # (the common case under churn) pay no failed lookup
            # result handling.
            poi_id = poi.poi_id
            if poi_id in items:
                items[poi_id].last_used = now
            else:
                # Inline CacheItem(poi, now, now): allocation via
                # __new__ plus direct slot stores — one C allocation
                # instead of a Python-frame __init__ per cached POI.
                item = new_item(CacheItem)
                item.poi = poi
                item.inserted_at = now
                item.last_used = now
                items[poi_id] = item
                if n == cap:
                    self._slot_n = n
                    self._grow_slots()
                    xs_b = self._slot_xs
                    ys_b = self._slot_ys
                    ids_b = self._slot_ids
                    cap = xs_b.size
                location = poi.location
                xs_b[n] = location.x
                ys_b[n] = location.y
                ids_b[n] = poi_id
                n += 1
        self._slot_n = n
        added = n - start_n
        changed = added > 0
        # Inline Rect.is_degenerate (zero width or height): IEEE
        # subtraction is zero exactly when the operands are equal.
        if region.x2 != region.x1 and region.y2 != region.y1:
            regions = self._regions
            if self.incremental and self._regions_coalesced and regions:
                # Fused covered-check + fast coalesce: while the
                # incumbents are containment-free, one pass over them
                # settles the newcomer (the same loop
                # :meth:`_coalesce_regions` would run after an
                # append).  A newcomer inside an incumbent changes
                # neither the region list nor the union — skip the
                # append *and* the generation bump (nothing
                # observable moved, so share payloads and merged-MVR
                # memos stay valid, which is exactly what the memo
                # keys exist to exploit).  Otherwise drop any
                # incumbents the newcomer covers and binary-insert it
                # into the area-descending order, as the fast
                # coalesce path does.
                rx1, ry1 = region.x1, region.y1
                rx2, ry2 = region.x2, region.y2
                covered: list[int] | None = None
                covered_by_incumbent = False
                for idx in range(len(regions)):
                    o = regions[idx].rect
                    if (
                        o.x1 <= rx1
                        and o.y1 <= ry1
                        and rx2 <= o.x2
                        and ry2 <= o.y2
                    ):
                        covered_by_incumbent = True
                        break
                    if (
                        rx1 <= o.x1
                        and ry1 <= o.y1
                        and o.x2 <= rx2
                        and o.y2 <= ry2
                    ):
                        if covered is None:
                            covered = [idx]
                        else:
                            covered.append(idx)
                if not covered_by_incumbent:
                    changed = True
                    if covered is not None:
                        for idx in reversed(covered):
                            del regions[idx]
                    new_vr = VerifiedRegion(region, now)
                    area = new_vr.area
                    if regions and regions[-1].area >= area:
                        regions.append(new_vr)
                    else:
                        lo, hi = 0, len(regions)
                        while lo < hi:
                            mid = (lo + hi) // 2
                            if regions[mid].area >= area:
                                lo = mid + 1
                            else:
                                hi = mid
                        regions.insert(lo, new_vr)
                    mirror = self._mirror
                    if mirror is not None:
                        # Dropping covered rectangles never changes
                        # the union — the newcomer is the only
                        # geometric delta, applied to its slabs.
                        mirror.insert_rect(region)
                    if len(regions) > self.max_regions:
                        self._trim_regions(host_position)
            else:
                changed = True
                self._append_region(region, now, host_position)
        # Inlined no-excess guard: most inserts sit at or under
        # capacity and skip the call entirely.
        evicted = 0
        if len(items) > self.capacity:
            evicted = self._enforce_capacity(now, host_position, heading)
        if changed or evicted:
            self.generation += 1
        if invariants.ENABLED:
            invariants.check_cache(self)
        return added, evicted

    def _append_region(
        self, region: Rect, now: float, host_position: Point
    ) -> None:
        """Append a verified region the general way: full coalesce.

        The reference path (``incremental=False``) and the
        post-shrink path (``_regions_coalesced`` false) land here; the
        common case is fused into :meth:`_insert_result`.
        """
        regions = self._regions
        new_vr = VerifiedRegion(region, now)
        regions.append(new_vr)
        self._coalesce_regions()
        mirror = self._mirror
        if mirror is not None:
            # Coalescing only ever drops covered rectangles, which
            # never changes the union — the kept newcomer is the only
            # geometric delta, applied to its affected slabs.
            for vr in regions:
                if vr is new_vr:
                    mirror.insert_rect(region)
                    break
        if len(regions) > self.max_regions:
            self._trim_regions(host_position)

    def _trim_regions(self, host_position: Point) -> None:
        """Enforce ``max_regions``: drop the region farthest from the
        host (its POIs stay cached).  Single pass, one distance per
        region; ties keep the first maximum, as ``max()`` over the old
        per-trip lambda did."""
        regions = self._regions
        while len(regions) > self.max_regions:
            worst = 0
            worst_dist = regions[0].rect.distance_to_point(host_position)
            for idx in range(1, len(regions)):
                dist = regions[idx].rect.distance_to_point(host_position)
                if dist > worst_dist:
                    worst, worst_dist = idx, dist
            del regions[worst]
            # Removing a rectangle can carve the union arbitrarily;
            # rebuild the mirror lazily from the survivors.
            self._mirror = None

    def touch(self, poi_ids: Iterable[int], now: float) -> None:
        """Record use of cached POIs (LRU bookkeeping)."""
        for poi_id in poi_ids:
            item = self._items.get(poi_id)
            if item is not None:
                item.last_used = now

    def share(self) -> tuple[list[Rect], list[POI]]:
        """What this host sends a requesting peer: VR rects + POIs.

        Serving a peer is not a local *use* of the data, so it leaves
        the LRU clock alone (callers record genuine uses via
        :meth:`touch`) and needs no clock at all — the content depends
        only on the cache state, never on when the request arrives.

        The payload is memoised on the content generation: the stamp
        moves exactly when the POI set or the regions change, so the
        memo is rebuilt precisely as often as the content differs.
        Fresh list copies are returned so callers may mutate them.
        """
        memo = self._share_memo
        generation = self.generation
        if memo is None or memo[0] != generation:
            memo = (generation, tuple(self.region_rects), tuple(self.pois))
            self._share_memo = memo
        return list(memo[1]), list(memo[2])

    def frozen_snapshot(
        self,
    ) -> tuple[int, tuple[Rect, ...], tuple[POI, ...], SlabUnion]:
        """An immutable export of the shareable cache state.

        Returns ``(generation, region_rects, pois, frozen_union)``
        where ``frozen_union`` is a frozen copy-on-write clone of the
        slab mirror (:attr:`region_union`): the clone shares every
        interval tuple with the live mirror, so exporting costs
        O(slabs) — and nothing at all while the generation is
        unchanged, since the whole snapshot is memoised per content
        generation.  The frozen clone stays valid forever (the live
        mirror mutates *its own* structure, never the shared tuples),
        which is what lets shard halos mirror a peer's verified area
        without re-merging rectangle lists per broadcast cycle.
        """
        memo = self._snapshot_memo
        generation = self.generation
        if memo is None or memo[0] != generation:
            regions, pois = self.share()
            memo = (
                generation,
                tuple(regions),
                tuple(pois),
                self.region_union.clone().freeze(),
            )
            self._snapshot_memo = memo
        return memo

    # ------------------------------------------------------------------
    # Binary codec support (see repro.codec.types)
    # ------------------------------------------------------------------
    def codec_state(self) -> tuple:
        """The cache's replayable state as flat structures.

        Everything the host-migration codec ships: configuration
        scalars, the POI table in dict insertion order (load-bearing:
        ``pois``/``share`` iterate it), the verified regions in their
        area-descending list order, the *exact* slot-array prefix
        (swap-remove order is load-bearing for batch eviction), and
        the slab mirror (or ``None``).  Memos, the tracer, and the
        policy are excluded — memoised values are pure functions of
        this state (dropping them is determinism-safe), and the policy
        is encoded separately by the codec.
        """
        n = self._slot_n
        return (
            self.capacity,
            self.max_regions,
            self.incremental,
            self.generation,
            self._regions_coalesced,
            tuple(self._items.values()),
            tuple(self._regions),
            self._slot_ids[:n],
            self._slot_xs[:n],
            self._slot_ys[:n],
            self._mirror,
        )

    @classmethod
    def from_codec_state(
        cls,
        policy: ReplacementPolicy,
        capacity: int,
        max_regions: int,
        incremental: bool,
        generation: int,
        regions_coalesced: bool,
        items: Sequence[CacheItem],
        regions: Sequence[VerifiedRegion],
        slot_ids,
        slot_xs,
        slot_ys,
        mirror: SlabUnion | None,
    ) -> "POICache":
        """Rebuild a cache from :meth:`codec_state` components.

        The slot arrays arrive as (possibly read-only ``frombuffer``)
        views; they are copied into fresh writable buffers sized by
        the same doubling schedule ``_grow_slots`` uses.  Memos start
        empty and the tracer unset — both rebuild on demand with
        values identical to the originals.
        """
        if capacity < 1:
            raise CacheError(f"cache capacity must be >= 1, got {capacity}")
        if max_regions < 1:
            raise CacheError(f"max_regions must be >= 1, got {max_regions}")
        cache = cls.__new__(cls)
        cache.capacity = capacity
        cache.max_regions = max_regions
        cache.policy = policy
        cache.incremental = incremental
        cache._items = {item.poi.poi_id: item for item in items}
        if len(cache._items) != len(items):
            raise CacheError("duplicate POI ids in codec cache state")
        cache._regions = list(regions)
        n = int(np.asarray(slot_ids).size)
        grown = 64
        while grown < n:
            grown *= 2
        cache._slot_n = n
        cache._slot_xs = np.empty(grown, np.float64)
        cache._slot_ys = np.empty(grown, np.float64)
        cache._slot_ids = np.empty(grown, np.int64)
        cache._slot_xs[:n] = slot_xs
        cache._slot_ys[:n] = slot_ys
        cache._slot_ids[:n] = slot_ids
        cache._mirror = mirror
        cache.generation = generation
        cache.tracer = None
        cache._regions_coalesced = regions_coalesced
        cache._pois_memo = None
        cache._share_memo = None
        cache._snapshot_memo = None
        return cache

    def pois_in(self, rect: Rect) -> list[POI]:
        """Cached POIs inside a rectangle (sorted by id)."""
        hits = [
            item.poi
            for item in self._items.values()
            if rect.contains_point(item.poi.location)
        ]
        hits.sort(key=lambda p: p.poi_id)
        return hits

    # ------------------------------------------------------------------
    def _coalesce_regions(self) -> None:
        """Drop regions fully covered by another (newer wins ties).

        Fast path: while ``_regions_coalesced`` holds (no eviction has
        shrunk a region since the last coalesce) the incumbents are
        mutually containment-free and area-sorted, so the only
        possible containments involve the newcomer (always the last
        appended).  One pass over the incumbents settles everything:
        an incumbent covering the newcomer means nothing changes (the
        full scan, processing larger areas first, would drop the
        newcomer — ties too, since the stable sort keeps the
        incumbent ahead); otherwise any incumbents the newcomer
        covers are dropped and the newcomer binary-inserts into the
        sorted survivors, ties landing behind, exactly where the
        stable full-scan sort would put it.  The two containment
        directions are mutually exclusive across the pass — newcomer
        inside one incumbent and around another would nest the two
        incumbents, contradicting containment-freeness.

        The flag matters: shrinking can push a kept region inside a
        sibling, and those stale containments are only cleaned up by
        the full scan below.
        """
        regions = self._regions
        if len(regions) > 1:
            if self._regions_coalesced:
                new_vr = regions[-1]
                new = new_vr.rect
                nx1, ny1, nx2, ny2 = new.x1, new.y1, new.x2, new.y2
                covered: list[int] | None = None
                for idx in range(len(regions) - 1):
                    o = regions[idx].rect
                    ox1, oy1, ox2, oy2 = o.x1, o.y1, o.x2, o.y2
                    if ox1 <= nx1 and oy1 <= ny1 and nx2 <= ox2 and ny2 <= oy2:
                        regions.pop()
                        return
                    if nx1 <= ox1 and ny1 <= oy1 and ox2 <= nx2 and oy2 <= ny2:
                        if covered is None:
                            covered = [idx]
                        else:
                            covered.append(idx)
                regions.pop()
                if covered is not None:
                    for idx in reversed(covered):
                        del regions[idx]
                area = new_vr.area
                if regions and regions[-1].area >= area:
                    regions.append(new_vr)
                else:
                    lo, hi = 0, len(regions)
                    while lo < hi:
                        mid = (lo + hi) // 2
                        if regions[mid].area >= area:
                            lo = mid + 1
                        else:
                            hi = mid
                    regions.insert(lo, new_vr)
                return
            kept: list[VerifiedRegion] = []
            for vr in sorted(regions, key=_descending_area):
                rect = vr.rect
                rx1, ry1, rx2, ry2 = rect.x1, rect.y1, rect.x2, rect.y2
                for other in kept:
                    o = other.rect
                    if o.x1 <= rx1 and o.y1 <= ry1 and rx2 <= o.x2 and ry2 <= o.y2:
                        break
                else:
                    kept.append(vr)
            self._regions = kept
        self._regions_coalesced = True

    def _enforce_capacity(
        self, now: float, host_position: Point, heading: tuple[float, float]
    ) -> int:
        """Evict down to capacity; returns the number of POIs evicted.

        Eviction is batched: every victim is ranked in one vectorised
        policy call, all victims leave the POI table in one pass, and
        the verified regions are repaired once for the whole batch —
        the per-victim path re-scanned every region per eviction.  The
        batch is observationally identical to evicting the ranked
        victims one at a time (the property suite pins this against
        :meth:`_evict`).
        """
        excess = len(self._items) - self.capacity
        if excess <= 0:
            return 0
        items = self._items
        xs_b = self._slot_xs
        ys_b = self._slot_ys
        ids_b = self._slot_ids
        select = getattr(self.policy, "select_victims", None)
        if self.incremental and select is not None:
            # Victims straight from the coordinate arrays (same
            # ranking as rank_victims — the batch-eviction suite pins
            # it), then swap-remove their slots highest-index first so
            # a pending victim is never relocated into a freed slot.
            n = self._slot_n
            sel = select(
                xs_b[:n], ys_b[:n], ids_b[:n], excess, host_position, heading
            )
            victim_ids = ids_b[sel].tolist()
            vxs = xs_b[sel].tolist()
            vys = ys_b[sel].tolist()
            for vid in victim_ids:
                del items[vid]
            for slot in np.sort(sel)[::-1].tolist():
                last = self._slot_n - 1
                self._slot_n = last
                if slot != last:
                    xs_b[slot] = xs_b[last]
                    ys_b[slot] = ys_b[last]
                    ids_b[slot] = ids_b[last]
        else:
            victims = self.policy.rank_victims(
                list(items.values()), host_position, heading
            )[:excess]
            vxs = []
            vys = []
            for item in victims:
                vid = item.poi.poi_id
                del items[vid]
                self._drop_slot_of(vid)
                location = item.poi.location
                vxs.append(location.x)
                vys.append(location.y)
        self._repair_regions(vxs, vys)
        mirror = self._mirror
        if mirror is not None:
            for x, y in zip(vxs, vys):
                p = Point(x, y)
                if mirror.contains_point(p):
                    mirror.subtract_point_cut(p)
            if mirror.slab_count > MIRROR_COMPACT_SLABS:
                self._mirror = None
        return excess

    def _repair_regions(
        self, vxs: Sequence[float], vys: Sequence[float]
    ) -> None:
        """Shrink every region covering an evicted point, in one pass.

        Equivalent to applying the per-victim shrink loop of
        :meth:`_evict` victim by victim: regions are independent of
        one another, so the victim loop can move inside the region
        loop as long as each region sees the victims in eviction
        order.  ``max_regions`` keeps the outer loop tiny, so the
        containment test runs on local floats (victim coordinates
        arrive as parallel float lists straight off the eviction
        arrays, bounds refreshed after each shrink) rather than a
        batched matrix build.
        """
        regions = self._regions
        if not regions or not vxs:
            return
        updated: list[VerifiedRegion] = []
        changed = False
        for vr in regions:
            rect = vr.rect
            x1, y1, x2, y2 = rect.x1, rect.y1, rect.x2, rect.y2
            for px, py in zip(vxs, vys):
                if x1 <= px <= x2 and y1 <= py <= y2:
                    rect = shrink_rect_to_exclude_xy(rect, px, py)
                    if rect is None:
                        break
                    x1, y1, x2, y2 = rect.x1, rect.y1, rect.x2, rect.y2
            if rect is None:
                changed = True
            elif rect is vr.rect:
                updated.append(vr)
            else:
                changed = True
                updated.append(VerifiedRegion(rect, vr.created_at))
        if changed:
            self._regions = updated
            self._regions_coalesced = False

    def _evict(self, poi: POI) -> None:
        """Remove one POI, shrinking every region that covers it.

        The sequential reference path: :meth:`_enforce_capacity` now
        batches its evictions, and the property suite checks the batch
        against this per-victim loop.  Generation bookkeeping is the
        caller's job (the public mutators bump it once per call).
        """
        if poi.poi_id not in self._items:
            raise CacheError(f"evicting uncached POI {poi.poi_id}")
        del self._items[poi.poi_id]
        self._drop_slot_of(poi.poi_id)
        updated: list[VerifiedRegion] = []
        shrunk_any = False
        for vr in self._regions:
            if not vr.rect.contains_point(poi.location):
                updated.append(vr)
                continue
            shrunk_any = True
            shrunk = shrink_rect_to_exclude(vr.rect, poi.location)
            if shrunk is not None:
                updated.append(VerifiedRegion(shrunk, vr.created_at))
        if shrunk_any:
            self._regions = updated
            self._regions_coalesced = False
        mirror = self._mirror
        if mirror is not None:
            location = poi.location
            if mirror.contains_point(location):
                mirror.subtract_point_cut(location)
            if mirror.slab_count > MIRROR_COMPACT_SLABS:
                self._mirror = None

    # ------------------------------------------------------------------
    def check_soundness(
        self, server_pois: Iterable[POI], margin: float = EVICTION_MARGIN
    ) -> None:
        """Test helper: assert the verified-region invariant.

        Every server POI *strictly more than* ``margin`` inside a
        region must be cached — strictly-open interiority, the one
        definition both branches share: eviction shrinking and mirror
        point cuts both leave survivors exactly ``margin`` from the
        excluded point, so a POI sitting precisely on the margin band
        is legal either way.  When the slab mirror is materialised the
        same contract is asserted over its (larger) area.

        Contrapositive (what the continuous safe regions rely on): an
        *uncached* POI is at least ``distance_to_boundary(q) - margin``
        away from any point ``q`` of the verified area.
        """
        server_pois = list(server_pois)
        for vr in self._regions:
            rect = vr.rect
            # A rectangle thinner than the 2*margin band has no strict
            # interior at this margin: nothing to check (and the
            # negative-margin shrink would be malformed).  Only this
            # degenerate case is skipped — any other failure below
            # must propagate, not silently skip the region.
            if (
                rect.x2 - rect.x1 <= 2.0 * margin
                or rect.y2 - rect.y1 <= 2.0 * margin
            ):
                continue
            inner = rect.expanded(-margin)
            ix1, iy1, ix2, iy2 = inner.x1, inner.y1, inner.x2, inner.y2
            for poi in server_pois:
                location = poi.location
                # Open comparisons: for a rectangle,
                # ``distance-to-boundary > margin`` is exactly strict
                # containment in the margin-shrunk rectangle.
                if (
                    ix1 < location.x < ix2
                    and iy1 < location.y < iy2
                    and poi.poi_id not in self
                ):
                    raise CacheError(
                        f"verified region {vr.rect.as_tuple()} covers uncached"
                        f" POI {poi.poi_id} at ({poi.x}, {poi.y})"
                    )
        mirror = self._mirror
        if mirror is not None and not mirror.is_empty:
            for poi in server_pois:
                if poi.poi_id in self:
                    continue
                location = poi.location
                if (
                    mirror.contains_point(location)
                    and mirror.distance_to_boundary(location) > margin
                ):
                    raise CacheError(
                        f"region mirror covers uncached POI {poi.poi_id}"
                        f" at ({poi.x}, {poi.y})"
                    )
