"""Cache record types.

A *verified region* (Section 3.2) is a rectangle for which the owning
host holds **every** POI the server has inside it — that completeness
is what lets a peer's answer be locally *verified* by a query host.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..geometry import Rect
from ..model import POI


@dataclass(frozen=True, slots=True)
class VerifiedRegion:
    """A rectangle of guaranteed-complete POI knowledge."""

    rect: Rect
    created_at: float

    @property
    def area(self) -> float:
        return self.rect.area


@dataclass(slots=True)
class CacheItem:
    """A cached POI plus bookkeeping for the replacement policies."""

    poi: POI
    inserted_at: float
    last_used: float
