"""Cache record types.

A *verified region* (Section 3.2) is a rectangle for which the owning
host holds **every** POI the server has inside it — that completeness
is what lets a peer's answer be locally *verified* by a query host.
"""

from __future__ import annotations

from ..geometry import Rect
from ..model import POI


class VerifiedRegion:
    """A rectangle of guaranteed-complete POI knowledge.

    ``area`` is computed once at construction: the region-coalescing
    pass orders by area on every cache insert, and chasing the nested
    ``rect.width * rect.height`` properties per comparison dominated
    that sort in profiles.

    A hand-written slots class (immutable by convention, never mutated
    after construction): one of these is built per cache insert and
    per region repair, and the generated frozen-dataclass
    ``__init__``/``__post_init__`` pair was itself visible in
    profiles.  Equality and hashing keep the old dataclass contract —
    ``(rect, created_at)``, with the derived ``area`` excluded.
    """

    __slots__ = ("rect", "created_at", "area")

    def __init__(self, rect: Rect, created_at: float) -> None:
        self.rect = rect
        self.created_at = created_at
        # Same float expression as Rect.area (width * height).
        self.area = (rect.x2 - rect.x1) * (rect.y2 - rect.y1)

    def __repr__(self) -> str:
        return (
            f"VerifiedRegion(rect={self.rect!r},"
            f" created_at={self.created_at!r})"
        )

    def __eq__(self, other: object) -> bool:
        if other.__class__ is VerifiedRegion:
            return (
                self.rect == other.rect
                and self.created_at == other.created_at
            )
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self.rect, self.created_at))


class CacheItem:
    """A cached POI plus bookkeeping for the replacement policies.

    A hand-written slots class like :class:`VerifiedRegion`: one is
    built per cached POI (tens of thousands per simulated run) and the
    generated dataclass ``__init__`` — dispatched through a
    ``<string>`` frame — was visible in profiles.  Keyword
    construction, equality, and ``repr`` keep the old
    ``dataclass(slots=True)`` contract; ``last_used`` stays mutable
    (the LRU clock writes it on every touch).
    """

    __slots__ = ("poi", "inserted_at", "last_used")

    def __init__(
        self, poi: POI, inserted_at: float, last_used: float
    ) -> None:
        self.poi = poi
        self.inserted_at = inserted_at
        self.last_used = last_used

    def __repr__(self) -> str:
        return (
            f"CacheItem(poi={self.poi!r},"
            f" inserted_at={self.inserted_at!r},"
            f" last_used={self.last_used!r})"
        )

    def __eq__(self, other: object) -> bool:
        if other.__class__ is CacheItem:
            return (
                self.poi == other.poi
                and self.inserted_at == other.inserted_at
                and self.last_used == other.last_used
            )
        return NotImplemented
