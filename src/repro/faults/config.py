"""Configuration of the unreliable-wireless fault layer."""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import FaultError


@dataclass(frozen=True, slots=True)
class FaultConfig:
    """All fault-injection knobs in one immutable bundle.

    * ``loss_rate`` — probability that one P2P message (request leg or
      response leg, drawn independently) is lost on a link;
    * ``distance_weighted`` — scale the loss probability with the
      squared link distance (``2 p (d / tx_range)^2``, clipped to 1),
      which preserves the mean loss over a uniform disc while making
      fringe peers flakier than close ones;
    * ``churn_rate`` — probability that an in-range peer has silently
      left the network (powered down, drove out between snapshots) and
      answers nothing for the whole query, retries included;
    * ``peer_timeout`` — response deadline in seconds; a peer whose
      sampled response delay (exponential with mean ``delay_scale``)
      exceeds it is a *deadline miss* and may be retried.  ``inf``
      (the default) disables the deadline entirely;
    * ``retries`` / ``backoff`` — the requester re-broadcasts the share
      request up to ``retries`` extra times for peers still unheard,
      waiting ``backoff * 2^(attempt-1)`` seconds before attempt
      ``attempt``; every retry is one more request on the air and one
      more round trip of latency;
    * ``max_backoff`` — ceiling on one backoff wait.  ``None`` (the
      default) caps at ``peer_timeout`` when a deadline is configured:
      a retry loop must never wait longer than the deadline it is
      racing, or heavy loss stalls queries instead of failing fast;
    * ``bucket_loss_rate`` — probability that one broadcast data
      bucket is corrupted in flight (defaults to ``loss_rate``); the
      client detects the loss and re-tunes at the next index segment
      per the (1, m) design, at most ``max_retunes`` times;
    * ``seed`` — the fault stream's own RNG seed, independent of the
      simulation seed so enabling faults never perturbs the workload.
    """

    loss_rate: float = 0.0
    distance_weighted: bool = False
    churn_rate: float = 0.0
    peer_timeout: float = math.inf
    delay_scale: float = 0.02
    retries: int = 1
    backoff: float = 0.05
    max_backoff: float | None = None
    bucket_loss_rate: float | None = None
    max_retunes: int = 4
    seed: int = 0

    def __post_init__(self) -> None:
        for name in ("loss_rate", "churn_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise FaultError(f"{name} must be in [0, 1], got {value}")
        if self.bucket_loss_rate is not None and not (
            0.0 <= self.bucket_loss_rate <= 1.0
        ):
            raise FaultError(
                f"bucket_loss_rate must be in [0, 1], got {self.bucket_loss_rate}"
            )
        if self.peer_timeout <= 0:
            raise FaultError(f"peer_timeout must be positive, got {self.peer_timeout}")
        if self.delay_scale <= 0:
            raise FaultError(f"delay_scale must be positive, got {self.delay_scale}")
        if self.retries < 0:
            raise FaultError(f"retries must be >= 0, got {self.retries}")
        if self.backoff < 0:
            raise FaultError(f"backoff must be >= 0, got {self.backoff}")
        if self.max_backoff is not None and self.max_backoff <= 0:
            raise FaultError(
                f"max_backoff must be positive, got {self.max_backoff}"
            )
        if self.max_retunes < 1:
            raise FaultError(f"max_retunes must be >= 1, got {self.max_retunes}")

    # ------------------------------------------------------------------
    @property
    def effective_bucket_loss_rate(self) -> float:
        """Bucket loss probability after the ``loss_rate`` default."""
        return (
            self.loss_rate
            if self.bucket_loss_rate is None
            else self.bucket_loss_rate
        )

    @property
    def p2p_enabled(self) -> bool:
        """True when any peer-side fault can fire."""
        return (
            self.loss_rate > 0.0
            or self.churn_rate > 0.0
            or math.isfinite(self.peer_timeout)
        )

    @property
    def broadcast_enabled(self) -> bool:
        """True when broadcast buckets can be lost."""
        return self.effective_bucket_loss_rate > 0.0

    @property
    def enabled(self) -> bool:
        """True when the config injects any fault at all."""
        return self.p2p_enabled or self.broadcast_enabled
