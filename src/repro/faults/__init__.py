"""Fault injection for the wireless medium.

The paper's radio model — and the seed reproduction's — is perfect:
every in-range peer answers instantly and losslessly, and broadcast
buckets always arrive.  This package makes the medium unreliable on
demand: a seeded :class:`ChannelModel` injects per-link packet loss
(optionally distance-dependent), peer churn, response-deadline misses,
and broadcast-bucket loss, while :class:`FaultConfig` bundles the
knobs (including the retry-with-backoff policy and the (1, m)
re-tune-at-next-index recovery cap).

The layer is strictly opt-in: with no :class:`FaultConfig` (or an
all-zero one) nothing here is ever consulted and no random draw is
made, so every fault-free run is bit-identical to one without the
package.
"""

from .channel import ChannelModel, P2PFaultStats
from .config import FaultConfig

__all__ = ["ChannelModel", "FaultConfig", "P2PFaultStats"]
