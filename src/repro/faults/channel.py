"""The seeded fault source: one :class:`ChannelModel` per simulation.

Every stochastic decision of the fault layer — message loss, churn,
response delay, bucket corruption — is drawn from the model's own RNG,
seeded by :attr:`FaultConfig.seed`.  Two models built from the same
config produce identical decision streams, and a simulation without a
model never touches this module, which is what makes the fault layer
bit-transparent when disabled.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..errors import FaultError
from .config import FaultConfig


@dataclass(frozen=True, slots=True)
class P2PFaultStats:
    """What the fault layer did to one query's share exchange.

    ``drops`` counts lost messages and churned peers, ``retries`` the
    extra request broadcasts, ``deadline_misses`` the responses that
    arrived past the deadline, and ``extra_latency`` the seconds the
    retry rounds (backoff plus round trip) added to the query.
    """

    drops: int = 0
    retries: int = 0
    deadline_misses: int = 0
    extra_latency: float = 0.0

    @property
    def faulted(self) -> bool:
        """True when any fault fired during the exchange."""
        return bool(self.drops or self.retries or self.deadline_misses)


class ChannelModel:
    """Seeded per-link fault decisions for one simulated world."""

    def __init__(self, config: FaultConfig, tx_range: float):
        if tx_range <= 0:
            raise FaultError(f"tx_range must be positive, got {tx_range}")
        self.config = config
        self.tx_range = tx_range
        self.rng = np.random.default_rng(config.seed)

    # ------------------------------------------------------------------
    # Peer-to-peer faults
    # ------------------------------------------------------------------
    def link_loss_probability(self, distance: float) -> float:
        """Loss probability of one message over a link of ``distance``.

        Distance weighting uses ``2 p (d / R)^2`` clipped to 1: the
        expectation over a uniform disc of radius ``R`` is exactly
        ``p`` (E[d^2/R^2] = 1/2), so the knob reshapes who loses
        packets without changing how many are lost overall.
        """
        p = self.config.loss_rate
        if self.config.distance_weighted and p > 0.0:
            frac = min(abs(distance), self.tx_range) / self.tx_range
            p = min(1.0, 2.0 * p * frac * frac)
        return p

    def link_lost(self, distance: float) -> bool:
        """Draw one message-loss decision for a link."""
        p = self.link_loss_probability(distance)
        return p > 0.0 and float(self.rng.random()) < p

    def peer_departed(self) -> bool:
        """Draw one churn decision: has this peer silently left?"""
        p = self.config.churn_rate
        return p > 0.0 and float(self.rng.random()) < p

    def response_arrival(self, issued_at: float) -> float:
        """Sampled arrival time of a response to a request at ``issued_at``.

        The delay is exponential with mean ``delay_scale``; callers
        compare the arrival against the request's deadline.  Only
        meaningful — and only drawn — when a deadline is configured:
        a draw on the no-deadline path would silently shift every
        later fault decision, so the contract is enforced here rather
        than trusted to each call site.
        """
        if not self.has_deadline:
            raise FaultError(
                "response_arrival drawn without a configured deadline"
            )
        return issued_at + float(self.rng.exponential(self.config.delay_scale))

    @property
    def has_deadline(self) -> bool:
        """True when responses can miss a configured deadline."""
        return math.isfinite(self.config.peer_timeout)

    def backoff_delay(self, attempt: int) -> float:
        """Exponential-backoff wait before retry ``attempt`` (1-based).

        The doubling is capped: by ``max_backoff`` when set, else by
        ``peer_timeout`` when a deadline is configured — waiting longer
        than the deadline the retry is racing can only stall the query.
        """
        if attempt < 1:
            raise FaultError(f"attempt must be >= 1, got {attempt}")
        delay = self.config.backoff * (2.0 ** (attempt - 1))
        ceiling = self.config.max_backoff
        if ceiling is None and self.has_deadline:
            ceiling = self.config.peer_timeout
        if ceiling is not None:
            delay = min(delay, ceiling)
        return delay

    # ------------------------------------------------------------------
    # Broadcast faults
    # ------------------------------------------------------------------
    def split_received(
        self, bucket_ids: Sequence[int]
    ) -> tuple[list[int], list[int]]:
        """Partition a bucket download into ``(received, lost)``."""
        p = self.config.effective_bucket_loss_rate
        if p <= 0.0 or not bucket_ids:
            return list(bucket_ids), []
        received: list[int] = []
        lost: list[int] = []
        for bucket_id in bucket_ids:
            if float(self.rng.random()) < p:
                lost.append(bucket_id)
            else:
                received.append(bucket_id)
        return received, lost
