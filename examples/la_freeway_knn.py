"""The paper's motivating scenario: "find the top-3 nearest hospitals"
from a moving vehicle, where a stale exact answer is worthless but a
prompt approximate answer — with a correctness probability and a
surpassing ratio — keeps the motorist moving (Sections 1 and 3.3.2).

A Los-Angeles-density world runs background traffic; one tracked
vehicle issues a 3-NN query every simulated minute while driving.  For
every approximate answer we print the Lemma 3.2 annotations and the
worst-case extra driving distance.

Run:  python examples/la_freeway_knn.py
"""

from repro.core import Resolution, expected_detour
from repro.experiments import Simulation, scaled_parameters
from repro.workloads import LA_CITY, QueryKind


def main() -> None:
    params = scaled_parameters(LA_CITY, area_scale=0.05)
    print(f"LA-density world: {params.mh_number} vehicles,"
          f" {params.poi_number} POIs")
    sim = Simulation(params, seed=42)

    print("Warming up the fleet's caches ...")
    sim.run_workload(QueryKind.KNN, warmup_queries=0, measure_queries=2500)

    driver = 17  # an arbitrary tracked vehicle
    print(f"\nFollowing vehicle {driver} for 10 one-minute hops:\n")
    exact, approximate, waited = 0, 0, 0
    for minute in range(10):
        now = sim.env.now + 60.0 * (minute + 1)
        result = sim.run_knn_query(host_id=driver, k=3, now=now)
        record = result.record
        position = sim.host_position(driver)
        print(f"t+{minute + 1:2d} min at ({position.x:.1f}, {position.y:.1f}):"
              f" {record.resolution.value:11s}"
              f" latency {record.access_latency:6.2f} s")
        if record.resolution is Resolution.APPROXIMATE:
            approximate += 1
            for entry in result.heap_entries:
                if entry.verified:
                    continue
                detour = expected_detour(
                    entry.distance,
                    next(
                        (
                            e.distance
                            for e in reversed(result.heap_entries)
                            if e.verified
                        ),
                        None,
                    ),
                )
                detour_text = (
                    f", worst-case detour {detour:.2f} mi"
                    if detour is not None
                    else ""
                )
                print(f"        unverified POI {entry.poi.poi_id}:"
                      f" P(correct) = {entry.correctness:.0%}{detour_text}")
        elif record.resolution is Resolution.VERIFIED:
            exact += 1
        else:
            waited += 1

    print(f"\nSummary: {exact} exact-from-peers, {approximate} approximate,"
          f" {waited} had to wait for the broadcast channel.")


if __name__ == "__main__":
    main()
