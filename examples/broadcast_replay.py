"""Replay the (1, m) broadcast channel packet by packet.

Drives the base station as a real discrete-event process (one event
per packet), lets a client execute the on-air access protocol of
Section 2.1 — initial probe, index search, data retrieval — against
the replayed channel, and confirms the observed access latency matches
the closed-form schedule arithmetic the experiment harness uses.

Run:  python examples/broadcast_replay.py
"""

import numpy as np

from repro.experiments import BaseStation
from repro.geometry import Point, Rect
from repro.sim import Environment, Store
from repro.workloads import generate_pois

BOUNDS = Rect(0, 0, 20, 20)


def main() -> None:
    rng = np.random.default_rng(11)
    pois = generate_pois(BOUNDS, 200, rng)
    station = BaseStation(pois, BOUNDS, m=4, packet_time=0.2)
    schedule = station.schedule
    print(f"data file: {schedule.data_bucket_count} buckets,"
          f" index: {schedule.index_packet_count} packets x {schedule.m}"
          f" copies per cycle")
    print(f"cycle: {schedule.cycle_packets} packets"
          f" = {schedule.cycle_duration:.1f} s\n")

    query = Point(7.5, 12.5)
    t_query = 3.33
    plan = station.client.knn(query, 5, t_query=t_query)
    print(f"on-air 5-NN at t={t_query}s needs buckets"
          f" {list(plan.plan.bucket_ids)}")
    print(f"closed-form: latency {plan.cost.access_latency:.2f} s,"
          f" tuning {plan.cost.tuning_packets} packets")

    # Replay the channel and observe the same retrieval live.
    env = Environment()
    channel = Store(env)
    needed = set(plan.plan.bucket_ids)
    observed = {}

    def client_process(env, channel):
        while needed:
            packet = yield channel.get()
            if packet.kind == "data" and packet.ref in needed:
                # The client may only use packets after its index read.
                index_ready = (
                    schedule.next_index_start(t_query + schedule.packet_time)
                    + plan.plan.index_read_packets * schedule.packet_time
                )
                if packet.time - schedule.packet_time >= index_ready - 1e-9:
                    needed.remove(packet.ref)
                    observed[packet.ref] = packet.time

    env.process(station.broadcast_process(env, channel, cycles=3))
    env.process(client_process(env, channel))
    env.run()

    finish = max(observed.values())
    print(f"replayed:    last needed packet fully received at"
          f" t={finish:.2f} s -> latency {finish - t_query:.2f} s")
    match = abs((finish - t_query) - plan.cost.access_latency) < 1e-6
    print(f"replay agrees with schedule arithmetic: {match}")


if __name__ == "__main__":
    main()
