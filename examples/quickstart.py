"""Quickstart: build a small world and ask it spatial queries.

Creates a scaled Synthetic-Suburbia world (Table 3 densities), lets
its caches warm up with some background traffic, then fires one kNN
query and one window query from a random vehicle and explains how each
was answered.

Run:  python examples/quickstart.py
"""

from repro import Resolution, quick_world
from repro.workloads import QueryKind


def main() -> None:
    print("Building a scaled Synthetic-Suburbia world ...")
    world = quick_world(seed=7)
    params = world.params
    print(
        f"  {params.mh_number} vehicles, {params.poi_number} gas stations"
        f" on {params.area_side_mi:.1f} x {params.area_side_mi:.1f} miles"
    )
    print(f"  expected peers within {params.tx_range_m:.0f} m:"
          f" {params.expected_peers:.1f}")

    print("\nWarming caches with background traffic ...")
    warmup = world.run_workload(
        QueryKind.KNN, warmup_queries=0, measure_queries=800
    )
    print(f"  warm-up resolution mix: {warmup.pct_verified:.0f}% SBNN /"
          f" {warmup.pct_approximate:.0f}% approximate /"
          f" {warmup.pct_broadcast:.0f}% broadcast")

    print("\n--- k nearest neighbours -------------------------------")
    result = world.run_knn_query(k=3)
    record = result.record
    print(f"host {record.host_id} asked for its top-3 nearest gas stations")
    print(f"  resolved via: {record.resolution.value}"
          f" (consulted {record.peer_count} peers)")
    print(f"  access latency: {record.access_latency:.2f} s")
    for rank, entry in enumerate(result.heap_entries or (), start=1):
        tag = "verified" if entry.verified else (
            f"approximate, P(correct) = {entry.correctness:.0%}"
        )
        print(f"  #{rank}: POI {entry.poi.poi_id}"
              f" at {entry.distance:.2f} mi ({tag})")
    if not result.heap_entries:
        for rank, poi in enumerate(result.answers, start=1):
            print(f"  #{rank}: POI {poi.poi_id} (exact, from the channel)")

    print("\n--- window query ---------------------------------------")
    result = world.run_window_query()
    record = result.record
    print(f"host {record.host_id} asked for gas stations in a"
          f" {record.window_area:.2f} sq-mi window")
    print(f"  resolved via: {record.resolution.value}")
    print(f"  access latency: {record.access_latency:.2f} s")
    print(f"  {len(result.answers)} POIs returned")

    if record.resolution is Resolution.BROADCAST:
        print("  (the peers could not cover the window; the reduced"
              " remainder went to the broadcast channel)")


if __name__ == "__main__":
    main()
