"""Why broadcast at all? The on-demand model under load.

Section 1 of the paper rejects point-to-point on-demand access because
it "may not scale to very large systems".  This example loads an
on-demand spatial server with increasing request rates and contrasts
its latency against the load-independent broadcast channel — and then
shows what the paper's sharing buys on top of broadcast.

Run:  python examples/ondemand_vs_broadcast.py
"""

import numpy as np

from repro.broadcast import OnAirClient
from repro.errors import ExperimentError
from repro.geometry import Point, Rect
from repro.ondemand import OnDemandServer, mmc_wait_time
from repro.sim import Environment, Resource
from repro.workloads import generate_pois

BOUNDS = Rect(0, 0, 20, 20)


def main() -> None:
    rng = np.random.default_rng(9)
    pois = generate_pois(BOUNDS, 800, rng)
    client = OnAirClient.build(pois, BOUNDS, hilbert_order=6)
    server = OnDemandServer(pois, channels=4)

    broadcast = np.mean(
        [
            client.knn(Point(*rng.uniform(1, 19, 2)), 5, t_query=float(t))
            .cost.access_latency
            for t in rng.uniform(0, 100, 30)
        ]
    )
    service = np.mean(
        [
            server.service_time_for_knn(Point(*rng.uniform(1, 19, 2)), 5)
            for _ in range(30)
        ]
    )
    print(f"broadcast latency (any load): {broadcast:.2f} s")
    print(f"on-demand service time (unloaded): {service:.3f} s\n")

    print("rate [1/s] | on-demand mean latency [s] (4 uplink channels)")
    for rate in (1, 5, 10, 20, 40):
        env = Environment()
        uplinks = Resource(env, capacity=4)
        sink = []

        def arrivals(env):
            while env.now < 60.0:
                yield env.timeout(float(rng.exponential(1.0 / rate)))
                q = Point(*rng.uniform(1, 19, 2))
                env.process(server.request_process(env, uplinks, q, 5, sink))

        env.process(arrivals(env))
        env.run()
        latency = np.mean([a.latency for a in sink])
        try:
            model = mmc_wait_time(rate, 1.0 / service, 4)
        except ExperimentError:  # unstable: no stationary wait exists
            model = float("inf")
        model_text = "unstable" if model == float("inf") else f"{model + service:.2f}"
        marker = "  <-- past saturation" if model == float("inf") else ""
        print(f"{rate:10d} | measured {latency:7.2f}   M/M/c {model_text}{marker}")

    print("\nThe broadcast channel serves any population at the same"
          f" ~{broadcast:.1f} s — and the paper's P2P sharing removes even"
          " that wait for the majority of queries (see the Figure 10"
          " benchmark).")


if __name__ == "__main__":
    main()
