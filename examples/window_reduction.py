"""SBWQ window reduction, step by step (Section 3.4, Figure 9).

Builds a hand-crafted scene: a query window, a handful of peers with
known verified regions, and the broadcast channel behind them.  Shows
how the merged verified region shrinks the window to the uncovered
remainder ``w'`` and how much channel time that saves.

Run:  python examples/window_reduction.py
"""

import numpy as np

from repro.broadcast import OnAirClient
from repro.core import Resolution, sbwq
from repro.geometry import Point, Rect
from repro.p2p import ShareResponse
from repro.workloads import generate_pois

BOUNDS = Rect(0, 0, 20, 20)


def honest_response(peer_id, vr, pois):
    inside = tuple(p for p in pois if vr.contains_point(p.location))
    return ShareResponse(peer_id, (vr,), inside)


def main() -> None:
    rng = np.random.default_rng(3)
    pois = generate_pois(BOUNDS, 400, rng)
    client = OnAirClient.build(pois, BOUNDS, hilbert_order=6, bucket_capacity=4)

    window = Rect(6, 6, 11, 10)
    print(f"query window w: {window.as_tuple()}  area {window.area:.0f} sq mi")

    peers = [
        honest_response(1, Rect(5, 5, 9, 11), pois),
        honest_response(2, Rect(8.5, 4, 10, 8), pois),
    ]
    for response in peers:
        print(f"  peer {response.peer_id} contributes VR"
              f" {response.regions[0].as_tuple()}"
              f" with {len(response.pois)} POIs")

    outcome = sbwq(window, peers)
    print(f"\nSBWQ outcome: {outcome.resolution.value}")
    print(f"  POIs certified by peers: {len(outcome.verified_pois)}")
    covered = window.area - sum(r.area for r in outcome.remainder_windows)
    print(f"  window coverage by MVR: {100 * covered / window.area:.0f}%")
    for fragment in outcome.remainder_windows:
        print(f"  reduced window w': {fragment.as_tuple()}"
              f" (area {fragment.area:.2f})")

    print("\nChannel cost comparison (same tune-in time):")
    full = client.window([window], t_query=5.0)
    print(f"  without sharing: {full.cost.buckets_downloaded} buckets,"
          f" latency {full.cost.access_latency:.1f} s,"
          f" tuning {full.cost.tuning_packets} packets")
    if outcome.resolution is Resolution.BROADCAST:
        reduced = client.window(outcome.remainder_windows, t_query=5.0)
        print(f"  with sharing:    {reduced.cost.buckets_downloaded} buckets,"
              f" latency {reduced.cost.access_latency:.1f} s,"
              f" tuning {reduced.cost.tuning_packets} packets")
        merged = {p.poi_id for p in outcome.verified_pois} | {
            p.poi_id for p in reduced.pois
        }
        print(f"  combined answer: {len(merged)} POIs"
              f" (identical to the unshared answer:"
              f" {sorted(merged) == sorted(p.poi_id for p in full.pois)})")
    else:
        print("  with sharing:    0 buckets — the peers answered everything")


if __name__ == "__main__":
    main()
