"""Road-network mobility: a vehicle driving shortest paths on a
street grid (the paper maps its random-waypoint trajectories onto the
Southern-California road network; we use a jittered lattice).

The trip is sampled once a minute; at each sample the vehicle asks for
its nearest gas station against a static POI field, using only its own
accumulating cache plus the broadcast channel — a miniature single-
vehicle version of the big simulation, useful for understanding the
caching dynamics in isolation.

Run:  python examples/roadnet_trip.py
"""

import numpy as np

from repro.broadcast import OnAirClient
from repro.cache import POICache
from repro.core import Resolution, sbnn
from repro.geometry import Rect
from repro.mobility import GridRoadNetwork, RoadTrajectory
from repro.p2p import ShareResponse
from repro.workloads import generate_pois

BOUNDS = Rect(0, 0, 20, 20)
MILES_PER_SECOND_40MPH = 40.0 / 3600.0


def main() -> None:
    rng = np.random.default_rng(5)
    network = GridRoadNetwork(BOUNDS, spacing=2.0, rng=rng)
    print(f"road network: {network.node_count} intersections")
    trip = RoadTrajectory(
        network,
        np.random.default_rng(6),
        speed_range=(MILES_PER_SECOND_40MPH, MILES_PER_SECOND_40MPH),
        pause_range=(0.0, 0.0),
    )

    pois = generate_pois(BOUNDS, 140, rng)
    client = OnAirClient.build(pois, BOUNDS, hilbert_order=6)
    cache = POICache(capacity=30, max_regions=8)
    density = len(pois) / BOUNDS.area

    own_hits = 0
    channel_trips = 0
    for minute in range(0, 30):
        t = minute * 60.0
        position = trip.position_at(t)
        heading = trip.heading_at(t)
        regions, cached = cache.share()
        responses = (
            [ShareResponse(0, tuple(regions), tuple(cached))] if regions else []
        )
        outcome = sbnn(position, responses, k=1, poi_density=density)
        if outcome.resolution is not Resolution.BROADCAST:
            own_hits += 1
            source = "own cache"
            latency = 0.0
        else:
            channel_trips += 1
            onair = client.knn(
                position,
                1,
                t_query=t,
                upper_bound=outcome.bounds.upper,
                lower_bound=outcome.bounds.lower,
                known_pois=outcome.verified_pois,
            )
            latency = onair.cost.access_latency
            source = "broadcast"
            covered = onair.covered
            cache.insert_result(
                covered,
                [p for p in onair.downloaded if covered.contains_point(p.location)],
                t,
                position,
                heading,
            )
        print(f"t={minute:2d} min ({position.x:5.1f}, {position.y:5.1f}):"
              f" nearest via {source:9s} latency {latency:5.2f} s")

    print(f"\n{own_hits}/30 answers came straight from the vehicle's own"
          f" accumulated cache; {channel_trips} needed the channel.")
    cache.check_soundness(pois)
    print("cache soundness invariant verified.")


if __name__ == "__main__":
    main()
